/**
 * @file
 * Tests for the DDG representation, builder, graph algorithms and the
 * structural verifier.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.hh"
#include "ir/graph_algo.hh"
#include "ir/verify.hh"
#include "support/diag.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

TEST(Ddg, BuildsPaperExampleShape)
{
    const Ddg g = buildPaperExampleLoop();
    EXPECT_EQ(g.numNodes(), 4);
    EXPECT_EQ(g.numEdges(), 4);
    EXPECT_EQ(g.numInvariants(), 1);
    EXPECT_EQ(g.numMemOps(), 2);

    // Ld has two uses, one of them loop carried at distance 3.
    const auto uses = g.valueUses(0);
    ASSERT_EQ(uses.size(), 2u);
    int carried = 0;
    for (EdgeId e : uses)
        carried += g.edge(e).distance;
    EXPECT_EQ(carried, 3);
}

TEST(Ddg, KillEdgeHidesItEverywhere)
{
    DdgBuilder b("kill");
    const NodeId ld = b.load();
    const NodeId st = b.store();
    const EdgeId e = b.flow(ld, st);
    Ddg g = b.take();

    EXPECT_EQ(g.outEdges(ld).size(), 1u);
    g.killEdge(e);
    EXPECT_TRUE(g.outEdges(ld).empty());
    EXPECT_TRUE(g.inEdges(st).empty());
    EXPECT_EQ(g.numValueUses(ld), 0);
}

TEST(Ddg, CopyIsSharedUntilMutation)
{
    const Ddg a = buildPaperExampleLoop();
    Ddg b = a;
    EXPECT_TRUE(b.sharesStorageWith(a));

    // Const queries never detach.
    EXPECT_EQ(b.numNodes(), a.numNodes());
    EXPECT_EQ(b.outEdges(0).size(), a.outEdges(0).size());
    EXPECT_EQ(b.dump(), a.dump());
    EXPECT_TRUE(b.sharesStorageWith(a));

    // The first mutation detaches the copy.
    b.node(0).name = "renamed";
    EXPECT_FALSE(b.sharesStorageWith(a));
    EXPECT_NE(a.node(0).name, "renamed");
}

TEST(Ddg, MutatingADetachedCopyNeverPerturbsTheOriginal)
{
    const Ddg a = buildPaperExampleLoop();
    const std::string before = a.dump();

    Ddg b = a;
    const NodeId extra = b.addNode(Opcode::Add, "extra");
    b.addEdge(0, extra, DepKind::RegFlow, 1);
    b.killEdge(0);
    b.invariant(0).spilled = true;
    b.setName("mutant");

    EXPECT_EQ(a.dump(), before) << "original aliased by a detached copy";
    EXPECT_NE(b.dump(), before);
    EXPECT_EQ(a.numNodes() + 1, b.numNodes());

    // References into the original's storage survive the copy's whole
    // mutation history.
    const Node &n0 = a.node(0);
    EXPECT_EQ(n0.op, buildPaperExampleLoop().node(0).op);
}

TEST(Ddg, MutatingTheOriginalLeavesTheCopyIntact)
{
    Ddg a = buildPaperExampleLoop();
    const Ddg b = a;
    const std::string before = b.dump();

    a.killEdge(0);
    a.addNode(Opcode::Mul);

    EXPECT_FALSE(b.sharesStorageWith(a));
    EXPECT_EQ(b.dump(), before) << "copy aliased by the mutated source";
}

TEST(Ddg, MovedFromGraphIsValidAndEmpty)
{
    Ddg a = buildPaperExampleLoop();
    const Ddg b = std::move(a);
    EXPECT_EQ(a.numNodes(), 0);
    EXPECT_EQ(a.numEdges(), 0);
    EXPECT_EQ(a.numInvariants(), 0);
    EXPECT_GT(b.numNodes(), 0);

    // A moved-from graph is reusable.
    a.addNode(Opcode::Add);
    EXPECT_EQ(a.numNodes(), 1);

    Ddg c("c");
    c = std::move(a);
    EXPECT_EQ(c.numNodes(), 1);
    EXPECT_EQ(a.numNodes(), 0);
}

TEST(Ddg, UniquelyOwnedGraphMutatesInPlace)
{
    Ddg g = buildPaperExampleLoop();
    {
        const Ddg copy = g;
        EXPECT_TRUE(copy.sharesStorageWith(g));
    }
    // The only other handle is gone: mutation must not clone. Observe
    // via a self-copy taken before the write — after the scope above,
    // use_count is back to one, so the write happens in place and a
    // fresh copy shares again.
    g.node(0).name = "inplace";
    const Ddg after = g;
    EXPECT_TRUE(after.sharesStorageWith(g));
    EXPECT_EQ(after.node(0).name, "inplace");
}

TEST(Ddg, RegFlowFromStoreIsRejected)
{
    DdgBuilder b("bad");
    const NodeId st = b.store();
    const NodeId add = b.add();
    EXPECT_THROW(b.graph().addEdge(st, add, DepKind::RegFlow),
                 PanicError);
}

TEST(Ddg, InvariantBookkeeping)
{
    DdgBuilder b("inv");
    const NodeId m1 = b.mul();
    const NodeId m2 = b.mul();
    const InvId a = b.invariant("a", {m1, m2});
    const Ddg &g = b.graph();
    EXPECT_EQ(g.invariant(a).consumers.size(), 2u);
    EXPECT_EQ(g.node(m1).invariantUses.size(), 1u);
    EXPECT_EQ(g.numLiveInvariants(), 1);
}

TEST(GraphAlgo, SccFindsRecurrence)
{
    DdgBuilder b("rec");
    const NodeId a = b.add("a");
    const NodeId c = b.add("c");
    const NodeId d = b.add("d");
    b.flow(a, c);
    b.flow(c, d);
    b.flow(d, a, 1);  // Closes the cycle with distance 1.
    const Ddg g = b.take();

    const SccResult scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.numComps(), 1);
    EXPECT_TRUE(scc.isRecurrence[0]);
}

TEST(GraphAlgo, SelfEdgeIsARecurrence)
{
    DdgBuilder b("self");
    const NodeId a = b.add("a");
    b.flow(a, a, 2);
    const Ddg g = b.take();
    const SccResult scc = stronglyConnectedComponents(g);
    ASSERT_EQ(scc.numComps(), 1);
    EXPECT_TRUE(scc.isRecurrence[0]);
}

/** Test-local reachability by DFS over live edges (u itself only when
    on a cycle) — the reference the SCC properties are checked against. */
std::vector<std::vector<bool>>
refReachability(const Ddg &g)
{
    const int n = g.numNodes();
    std::vector<std::vector<bool>> reach(
        std::size_t(n), std::vector<bool>(std::size_t(n), false));
    for (NodeId s = 0; s < n; ++s) {
        std::vector<NodeId> stack = {s};
        while (!stack.empty()) {
            const NodeId u = stack.back();
            stack.pop_back();
            for (EdgeId e : g.outEdges(u)) {
                const NodeId v = g.edge(e).dst;
                if (!reach[std::size_t(s)][std::size_t(v)]) {
                    reach[std::size_t(s)][std::size_t(v)] = true;
                    stack.push_back(v);
                }
            }
        }
    }
    return reach;
}

TEST(GraphAlgo, SccPartitionIsAPermutationAndComponentsAreMaximal)
{
    // Property test over the pinned-seed generated suite: the SCC
    // result is a partition (every node in exactly one component,
    // matching compOf), components are exactly the mutual-reachability
    // classes (so they are maximal), the emission order is reverse
    // topological, and the adjacency-list overload agrees with the DDG
    // overload.
    SuiteParams params;
    params.numLoops = 40;
    const std::vector<SuiteLoop> suite = generateSuite(params);
    for (const SuiteLoop &loop : suite) {
        const Ddg &g = loop.graph;
        const int n = g.numNodes();
        const SccResult scc = stronglyConnectedComponents(g);

        // Partition: each node appears exactly once, where compOf says.
        std::vector<int> seen(std::size_t(n), 0);
        for (int c = 0; c < scc.numComps(); ++c) {
            for (const NodeId v : scc.comps[std::size_t(c)]) {
                ++seen[std::size_t(v)];
                ASSERT_EQ(scc.compOf[std::size_t(v)], c);
            }
        }
        for (NodeId v = 0; v < n; ++v)
            ASSERT_EQ(seen[std::size_t(v)], 1) << g.name() << " node " << v;

        // Components = mutual reachability classes (maximality: two
        // mutually reachable nodes are never split across components).
        const auto reach = refReachability(g);
        for (NodeId u = 0; u < n; ++u) {
            for (NodeId v = 0; v < n; ++v) {
                const bool sameComp = scc.compOf[std::size_t(u)] ==
                                      scc.compOf[std::size_t(v)];
                const bool mutual =
                    u == v || (reach[std::size_t(u)][std::size_t(v)] &&
                               reach[std::size_t(v)][std::size_t(u)]);
                ASSERT_EQ(sameComp, mutual)
                    << g.name() << " nodes " << u << ", " << v;
            }
        }

        // isRecurrence(c) == some member lies on a cycle.
        for (int c = 0; c < scc.numComps(); ++c) {
            const NodeId v = scc.comps[std::size_t(c)][0];
            ASSERT_EQ(scc.isRecurrence[std::size_t(c)],
                      bool(reach[std::size_t(v)][std::size_t(v)]));
        }

        // Reverse topological emission: a live edge between distinct
        // components points to the lower component index.
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            if (!g.edge(e).alive)
                continue;
            const int cs = scc.compOf[std::size_t(g.edge(e).src)];
            const int cd = scc.compOf[std::size_t(g.edge(e).dst)];
            if (cs != cd) {
                ASSERT_LT(cd, cs);
            }
        }

        // The adjacency-list overload is the same Tarjan: identical
        // partition and numbering when fed the same successor lists.
        std::vector<std::vector<int>> adj;
        adj.resize(std::size_t(n));
        for (NodeId u = 0; u < n; ++u) {
            for (EdgeId e : g.outEdges(u))
                adj[std::size_t(u)].push_back(g.edge(e).dst);
        }
        const AdjScc flat = stronglyConnectedComponents(adj);
        ASSERT_EQ(flat.numComps(), scc.numComps());
        EXPECT_EQ(flat.compOf, scc.compOf);
    }
}

TEST(GraphAlgo, TopologicalOrderRespectsDag)
{
    const Ddg g = buildPaperExampleLoop();
    const auto order = topologicalOrderIntraIteration(g);
    ASSERT_EQ(order.size(), 4u);
    std::vector<int> pos(4);
    for (int i = 0; i < 4; ++i)
        pos[std::size_t(order[std::size_t(i)])] = i;
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        if (g.edge(e).distance == 0) {
            EXPECT_LT(pos[std::size_t(g.edge(e).src)],
                      pos[std::size_t(g.edge(e).dst)]);
        }
    }
}

TEST(GraphAlgo, ZeroDistanceCycleIsFatal)
{
    DdgBuilder b("cycle");
    const NodeId a = b.add("a");
    const NodeId c = b.add("c");
    b.flow(a, c);
    b.flow(c, a);  // Distance 0 cycle: not executable.
    const Ddg g = b.take();
    EXPECT_THROW(topologicalOrderIntraIteration(g), FatalError);
    std::string why;
    EXPECT_FALSE(verifyDdg(g, &why));
    EXPECT_NE(why.find("cycle"), std::string::npos);
}

TEST(GraphAlgo, ReachabilityThroughSccAndBeyond)
{
    //  a -> b <-> c -> d   (b,c recurrence)
    DdgBuilder bld("reach");
    const NodeId a = bld.add("a");
    const NodeId b = bld.add("b");
    const NodeId c = bld.add("c");
    const NodeId d = bld.add("d");
    bld.flow(a, b);
    bld.flow(b, c);
    bld.flow(c, b, 1);
    bld.flow(c, d);
    const Ddg g = bld.take();

    const auto reach = reachability(g);
    EXPECT_TRUE(reach[std::size_t(a)][std::size_t(d)]);
    EXPECT_TRUE(reach[std::size_t(a)][std::size_t(b)]);
    EXPECT_TRUE(reach[std::size_t(b)][std::size_t(b)]);  // Via the cycle.
    EXPECT_TRUE(reach[std::size_t(c)][std::size_t(c)]);
    EXPECT_FALSE(reach[std::size_t(a)][std::size_t(a)]);
    EXPECT_FALSE(reach[std::size_t(d)][std::size_t(a)]);
}

TEST(Verify, AcceptsPaperExample)
{
    std::string why;
    EXPECT_TRUE(verifyDdg(buildPaperExampleLoop(), &why)) << why;
}

TEST(Verify, RejectsFusedEdgeWithDistance)
{
    DdgBuilder b("fused");
    const NodeId ld = b.load();
    const NodeId add = b.add();
    Ddg g = b.take();
    g.addEdge(ld, add, DepKind::RegFlow, 1, /*non_spillable=*/true);
    std::string why;
    EXPECT_FALSE(verifyDdg(g, &why));
}

TEST(Verify, RejectsSpillLoadWithoutRef)
{
    DdgBuilder b("sl");
    Ddg g = b.take();
    const NodeId l =
        g.addNode(Opcode::Load, "Ls", NodeOrigin::SpillLoad);
    (void)l;
    std::string why;
    EXPECT_FALSE(verifyDdg(g, &why));
    EXPECT_NE(why.find("SpillRef"), std::string::npos);
}

TEST(Opcode, RoundTripNames)
{
    for (Opcode op : {Opcode::Load, Opcode::Store, Opcode::Add,
                      Opcode::Mul, Opcode::Div, Opcode::Sqrt,
                      Opcode::Copy, Opcode::Nop}) {
        EXPECT_EQ(parseOpcode(opcodeName(op)), op);
    }
    EXPECT_THROW(parseOpcode("bogus"), FatalError);
}

TEST(Opcode, FuClassesMatchPaperMachine)
{
    EXPECT_EQ(fuClassOf(Opcode::Load), FuClass::Mem);
    EXPECT_EQ(fuClassOf(Opcode::Store), FuClass::Mem);
    EXPECT_EQ(fuClassOf(Opcode::Add), FuClass::Adder);
    EXPECT_EQ(fuClassOf(Opcode::Mul), FuClass::Mult);
    EXPECT_EQ(fuClassOf(Opcode::Div), FuClass::DivSqrt);
    EXPECT_EQ(fuClassOf(Opcode::Sqrt), FuClass::DivSqrt);
    EXPECT_TRUE(producesValue(Opcode::Load));
    EXPECT_FALSE(producesValue(Opcode::Store));
    EXPECT_FALSE(producesValue(Opcode::Nop));
}

} // namespace
} // namespace swp
