/**
 * @file
 * Tests for the DDG representation, builder, graph algorithms and the
 * structural verifier.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/graph_algo.hh"
#include "ir/verify.hh"
#include "support/diag.hh"

namespace swp
{
namespace
{

TEST(Ddg, BuildsPaperExampleShape)
{
    const Ddg g = buildPaperExampleLoop();
    EXPECT_EQ(g.numNodes(), 4);
    EXPECT_EQ(g.numEdges(), 4);
    EXPECT_EQ(g.numInvariants(), 1);
    EXPECT_EQ(g.numMemOps(), 2);

    // Ld has two uses, one of them loop carried at distance 3.
    const auto uses = g.valueUses(0);
    ASSERT_EQ(uses.size(), 2u);
    int carried = 0;
    for (EdgeId e : uses)
        carried += g.edge(e).distance;
    EXPECT_EQ(carried, 3);
}

TEST(Ddg, KillEdgeHidesItEverywhere)
{
    DdgBuilder b("kill");
    const NodeId ld = b.load();
    const NodeId st = b.store();
    const EdgeId e = b.flow(ld, st);
    Ddg g = b.take();

    EXPECT_EQ(g.outEdges(ld).size(), 1u);
    g.killEdge(e);
    EXPECT_TRUE(g.outEdges(ld).empty());
    EXPECT_TRUE(g.inEdges(st).empty());
    EXPECT_EQ(g.numValueUses(ld), 0);
}

TEST(Ddg, CopyIsSharedUntilMutation)
{
    const Ddg a = buildPaperExampleLoop();
    Ddg b = a;
    EXPECT_TRUE(b.sharesStorageWith(a));

    // Const queries never detach.
    EXPECT_EQ(b.numNodes(), a.numNodes());
    EXPECT_EQ(b.outEdges(0).size(), a.outEdges(0).size());
    EXPECT_EQ(b.dump(), a.dump());
    EXPECT_TRUE(b.sharesStorageWith(a));

    // The first mutation detaches the copy.
    b.node(0).name = "renamed";
    EXPECT_FALSE(b.sharesStorageWith(a));
    EXPECT_NE(a.node(0).name, "renamed");
}

TEST(Ddg, MutatingADetachedCopyNeverPerturbsTheOriginal)
{
    const Ddg a = buildPaperExampleLoop();
    const std::string before = a.dump();

    Ddg b = a;
    const NodeId extra = b.addNode(Opcode::Add, "extra");
    b.addEdge(0, extra, DepKind::RegFlow, 1);
    b.killEdge(0);
    b.invariant(0).spilled = true;
    b.setName("mutant");

    EXPECT_EQ(a.dump(), before) << "original aliased by a detached copy";
    EXPECT_NE(b.dump(), before);
    EXPECT_EQ(a.numNodes() + 1, b.numNodes());

    // References into the original's storage survive the copy's whole
    // mutation history.
    const Node &n0 = a.node(0);
    EXPECT_EQ(n0.op, buildPaperExampleLoop().node(0).op);
}

TEST(Ddg, MutatingTheOriginalLeavesTheCopyIntact)
{
    Ddg a = buildPaperExampleLoop();
    const Ddg b = a;
    const std::string before = b.dump();

    a.killEdge(0);
    a.addNode(Opcode::Mul);

    EXPECT_FALSE(b.sharesStorageWith(a));
    EXPECT_EQ(b.dump(), before) << "copy aliased by the mutated source";
}

TEST(Ddg, MovedFromGraphIsValidAndEmpty)
{
    Ddg a = buildPaperExampleLoop();
    const Ddg b = std::move(a);
    EXPECT_EQ(a.numNodes(), 0);
    EXPECT_EQ(a.numEdges(), 0);
    EXPECT_EQ(a.numInvariants(), 0);
    EXPECT_GT(b.numNodes(), 0);

    // A moved-from graph is reusable.
    a.addNode(Opcode::Add);
    EXPECT_EQ(a.numNodes(), 1);

    Ddg c("c");
    c = std::move(a);
    EXPECT_EQ(c.numNodes(), 1);
    EXPECT_EQ(a.numNodes(), 0);
}

TEST(Ddg, UniquelyOwnedGraphMutatesInPlace)
{
    Ddg g = buildPaperExampleLoop();
    {
        const Ddg copy = g;
        EXPECT_TRUE(copy.sharesStorageWith(g));
    }
    // The only other handle is gone: mutation must not clone. Observe
    // via a self-copy taken before the write — after the scope above,
    // use_count is back to one, so the write happens in place and a
    // fresh copy shares again.
    g.node(0).name = "inplace";
    const Ddg after = g;
    EXPECT_TRUE(after.sharesStorageWith(g));
    EXPECT_EQ(after.node(0).name, "inplace");
}

TEST(Ddg, RegFlowFromStoreIsRejected)
{
    DdgBuilder b("bad");
    const NodeId st = b.store();
    const NodeId add = b.add();
    EXPECT_THROW(b.graph().addEdge(st, add, DepKind::RegFlow),
                 PanicError);
}

TEST(Ddg, InvariantBookkeeping)
{
    DdgBuilder b("inv");
    const NodeId m1 = b.mul();
    const NodeId m2 = b.mul();
    const InvId a = b.invariant("a", {m1, m2});
    const Ddg &g = b.graph();
    EXPECT_EQ(g.invariant(a).consumers.size(), 2u);
    EXPECT_EQ(g.node(m1).invariantUses.size(), 1u);
    EXPECT_EQ(g.numLiveInvariants(), 1);
}

TEST(GraphAlgo, SccFindsRecurrence)
{
    DdgBuilder b("rec");
    const NodeId a = b.add("a");
    const NodeId c = b.add("c");
    const NodeId d = b.add("d");
    b.flow(a, c);
    b.flow(c, d);
    b.flow(d, a, 1);  // Closes the cycle with distance 1.
    const Ddg g = b.take();

    const SccResult scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.numComps(), 1);
    EXPECT_TRUE(scc.isRecurrence[0]);
}

TEST(GraphAlgo, SelfEdgeIsARecurrence)
{
    DdgBuilder b("self");
    const NodeId a = b.add("a");
    b.flow(a, a, 2);
    const Ddg g = b.take();
    const SccResult scc = stronglyConnectedComponents(g);
    ASSERT_EQ(scc.numComps(), 1);
    EXPECT_TRUE(scc.isRecurrence[0]);
}

TEST(GraphAlgo, TopologicalOrderRespectsDag)
{
    const Ddg g = buildPaperExampleLoop();
    const auto order = topologicalOrderIntraIteration(g);
    ASSERT_EQ(order.size(), 4u);
    std::vector<int> pos(4);
    for (int i = 0; i < 4; ++i)
        pos[std::size_t(order[std::size_t(i)])] = i;
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        if (g.edge(e).distance == 0) {
            EXPECT_LT(pos[std::size_t(g.edge(e).src)],
                      pos[std::size_t(g.edge(e).dst)]);
        }
    }
}

TEST(GraphAlgo, ZeroDistanceCycleIsFatal)
{
    DdgBuilder b("cycle");
    const NodeId a = b.add("a");
    const NodeId c = b.add("c");
    b.flow(a, c);
    b.flow(c, a);  // Distance 0 cycle: not executable.
    const Ddg g = b.take();
    EXPECT_THROW(topologicalOrderIntraIteration(g), FatalError);
    std::string why;
    EXPECT_FALSE(verifyDdg(g, &why));
    EXPECT_NE(why.find("cycle"), std::string::npos);
}

TEST(GraphAlgo, ReachabilityThroughSccAndBeyond)
{
    //  a -> b <-> c -> d   (b,c recurrence)
    DdgBuilder bld("reach");
    const NodeId a = bld.add("a");
    const NodeId b = bld.add("b");
    const NodeId c = bld.add("c");
    const NodeId d = bld.add("d");
    bld.flow(a, b);
    bld.flow(b, c);
    bld.flow(c, b, 1);
    bld.flow(c, d);
    const Ddg g = bld.take();

    const auto reach = reachability(g);
    EXPECT_TRUE(reach[std::size_t(a)][std::size_t(d)]);
    EXPECT_TRUE(reach[std::size_t(a)][std::size_t(b)]);
    EXPECT_TRUE(reach[std::size_t(b)][std::size_t(b)]);  // Via the cycle.
    EXPECT_TRUE(reach[std::size_t(c)][std::size_t(c)]);
    EXPECT_FALSE(reach[std::size_t(a)][std::size_t(a)]);
    EXPECT_FALSE(reach[std::size_t(d)][std::size_t(a)]);
}

TEST(Verify, AcceptsPaperExample)
{
    std::string why;
    EXPECT_TRUE(verifyDdg(buildPaperExampleLoop(), &why)) << why;
}

TEST(Verify, RejectsFusedEdgeWithDistance)
{
    DdgBuilder b("fused");
    const NodeId ld = b.load();
    const NodeId add = b.add();
    Ddg g = b.take();
    g.addEdge(ld, add, DepKind::RegFlow, 1, /*non_spillable=*/true);
    std::string why;
    EXPECT_FALSE(verifyDdg(g, &why));
}

TEST(Verify, RejectsSpillLoadWithoutRef)
{
    DdgBuilder b("sl");
    Ddg g = b.take();
    const NodeId l =
        g.addNode(Opcode::Load, "Ls", NodeOrigin::SpillLoad);
    (void)l;
    std::string why;
    EXPECT_FALSE(verifyDdg(g, &why));
    EXPECT_NE(why.find("SpillRef"), std::string::npos);
}

TEST(Opcode, RoundTripNames)
{
    for (Opcode op : {Opcode::Load, Opcode::Store, Opcode::Add,
                      Opcode::Mul, Opcode::Div, Opcode::Sqrt,
                      Opcode::Copy, Opcode::Nop}) {
        EXPECT_EQ(parseOpcode(opcodeName(op)), op);
    }
    EXPECT_THROW(parseOpcode("bogus"), FatalError);
}

TEST(Opcode, FuClassesMatchPaperMachine)
{
    EXPECT_EQ(fuClassOf(Opcode::Load), FuClass::Mem);
    EXPECT_EQ(fuClassOf(Opcode::Store), FuClass::Mem);
    EXPECT_EQ(fuClassOf(Opcode::Add), FuClass::Adder);
    EXPECT_EQ(fuClassOf(Opcode::Mul), FuClass::Mult);
    EXPECT_EQ(fuClassOf(Opcode::Div), FuClass::DivSqrt);
    EXPECT_EQ(fuClassOf(Opcode::Sqrt), FuClass::DivSqrt);
    EXPECT_TRUE(producesValue(Opcode::Load));
    EXPECT_FALSE(producesValue(Opcode::Store));
    EXPECT_FALSE(producesValue(Opcode::Nop));
}

} // namespace
} // namespace swp
