/**
 * @file
 * Loop unrolling tests: structure, dependence remapping across the
 * unroll seam, invariant sharing, MII scaling, and end-to-end
 * pipelining plus execution of the unrolled loop.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/unroll.hh"
#include "ir/verify.hh"
#include "support/diag.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/mii.hh"
#include "sim/vliw.hh"
#include "workload/paper_loops.hh"

namespace swp
{
namespace
{

TEST(Unroll, FactorOneIsIdentity)
{
    const Ddg g = buildPaperExampleLoop();
    const Ddg u = unrollLoop(g, 1);
    EXPECT_EQ(u.numNodes(), g.numNodes());
    EXPECT_EQ(u.numEdges(), g.numEdges());
}

TEST(Unroll, ReplicatesNodesEdgesAndSharesInvariants)
{
    const Ddg g = buildPaperExampleLoop();  // 4 nodes, 4 edges, 1 inv.
    const Ddg u = unrollLoop(g, 3);
    std::string why;
    ASSERT_TRUE(verifyDdg(u, &why)) << why;
    EXPECT_EQ(u.numNodes(), 12);
    EXPECT_EQ(u.numEdges(), 12);
    EXPECT_EQ(u.numInvariants(), 1);
    // The invariant is consumed by all three multiply copies.
    EXPECT_EQ(u.invariant(0).consumers.size(), 3u);
}

TEST(Unroll, CarriedDistanceRemapsAcrossTheSeam)
{
    // The paper example's Ld -> '+' edge has distance 3. Unrolled by
    // 2, copy j covers original iteration 2I+j: copy 0 reads original
    // iteration 2I-3 = 2(I-2)+1, i.e. Ld copy 1 at unrolled distance
    // 2; copy 1 reads 2I-2 = 2(I-1)+0, i.e. Ld copy 0 at distance 1.
    const Ddg g = buildPaperExampleLoop();
    const Ddg u = unrollLoop(g, 2);

    // Node numbering: copies of node n are 2n and 2n+1 in order.
    const NodeId ld0 = 0, ld1 = 1, add0 = 4, add1 = 5;
    ASSERT_EQ(u.node(ld0).op, Opcode::Load);
    ASSERT_EQ(u.node(add0).op, Opcode::Add);

    auto hasEdge = [&](NodeId src, NodeId dst, int dist) {
        for (EdgeId e : u.outEdges(src)) {
            if (u.edge(e).dst == dst && u.edge(e).distance == dist)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(hasEdge(ld1, add0, 2));
    EXPECT_TRUE(hasEdge(ld0, add1, 1));
    // Distance-0 edges stay within the copy.
    EXPECT_TRUE(hasEdge(ld0, 2, 0));  // Ld#0 -> *#0.
    EXPECT_TRUE(hasEdge(ld1, 3, 0));
}

TEST(Unroll, SelfRecurrenceDistanceDivides)
{
    // acc(i) = acc(i-2) + x: unrolled by 2, each copy depends on itself
    // at distance 1.
    DdgBuilder b("acc2");
    const NodeId ld = b.load();
    const NodeId acc = b.add("acc");
    b.flow(ld, acc);
    b.flow(acc, acc, 2);
    const NodeId st = b.store();
    b.flow(acc, st);
    const Ddg u = unrollLoop(b.take(), 2);

    const NodeId acc0 = 2, acc1 = 3;
    auto selfDist = [&](NodeId n) {
        for (EdgeId e : u.outEdges(n)) {
            if (u.edge(e).dst == n)
                return u.edge(e).distance;
        }
        return -1;
    };
    EXPECT_EQ(selfDist(acc0), 1);
    EXPECT_EQ(selfDist(acc1), 1);
}

TEST(Unroll, ResMiiScalesRoughlyLinearly)
{
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    const int base = resMii(g, m);
    for (int factor : {2, 3}) {
        const Ddg u = unrollLoop(g, factor);
        const int scaled = resMii(u, m);
        EXPECT_GE(scaled, base * factor - factor);
        EXPECT_LE(scaled, base * factor + factor);
    }
}

TEST(Unroll, UnrolledLoopPipelinesAndExecutes)
{
    const Ddg g = buildPaperExampleLoop();
    const Ddg u = unrollLoop(g, 2);
    const Machine m = Machine::universal("fig2", 4, 2);

    PipelinerOptions opts;
    opts.registers = 16;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r = pipelineLoop(u, m, Strategy::BestOfAll,
                                          opts);
    ASSERT_TRUE(r.success);
    // Two original iterations per unrolled iteration at (close to) the
    // original rate of 1 cycle each.
    EXPECT_LE(r.ii(), 3);
    std::string why;
    EXPECT_TRUE(equivalentToSequential(u, r.graph(), m, r.sched,
                                       r.alloc.rotAlloc, 20, &why))
        << why;
}

TEST(Unroll, RejectsSpillArtifacts)
{
    Ddg g = buildPaperExampleLoop();
    const NodeId ls =
        g.addNode(Opcode::Load, "Ls", NodeOrigin::SpillLoad);
    g.node(ls).spillRef.kind = SpillRef::Kind::ReloadStream;
    g.node(ls).spillRef.value = 0;
    EXPECT_THROW(unrollLoop(g, 2), PanicError);
}

} // namespace
} // namespace swp
