/**
 * @file
 * Rotating register allocation tests: the circular-packing conflict
 * model, fit strategies, minimum-register search and the MaxLive bound.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "machine/machine.hh"
#include "regalloc/rotalloc.hh"
#include "sched/hrms.hh"
#include "sched/mii.hh"

namespace swp
{
namespace
{

Schedule
paperFlatSchedule(int ii)
{
    Schedule s(ii, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    return s;
}

TEST(RotAlloc, PaperExampleFitsInMaxLive)
{
    const Ddg g = buildPaperExampleLoop();
    for (int ii = 1; ii <= 3; ++ii) {
        const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(ii));
        const int regs = minRotatingRegs(info);
        EXPECT_GE(regs, info.maxLive) << "ii=" << ii;
        EXPECT_LE(regs, info.maxLive + 1) << "ii=" << ii;

        const RotAllocResult alloc = allocateRotating(info, regs);
        ASSERT_TRUE(alloc.ok);
        std::string why;
        EXPECT_TRUE(allocationConflictFree(info, alloc, &why)) << why;
    }
}

TEST(RotAlloc, FailsBelowMaxLive)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(1));
    ASSERT_EQ(info.maxLive, 11);
    EXPECT_FALSE(allocateRotating(info, 10).ok);
    EXPECT_TRUE(allocateRotating(info, 11).ok ||
                allocateRotating(info, 12).ok);
}

TEST(RotAlloc, EveryStrategyProducesConflictFreePacking)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(2));
    for (FitStrategy strat : {FitStrategy::EndFit, FitStrategy::FirstFit,
                              FitStrategy::BestFit}) {
        for (AllocOrder order : {AllocOrder::Adjacency,
                                 AllocOrder::DescendingLength}) {
            const int regs = minRotatingRegs(info, strat, order);
            ASSERT_LE(regs, info.maxLive + 2)
                << fitStrategyName(strat);
            const RotAllocResult alloc =
                allocateRotating(info, regs, strat, order);
            ASSERT_TRUE(alloc.ok) << fitStrategyName(strat);
            std::string why;
            EXPECT_TRUE(allocationConflictFree(info, alloc, &why))
                << fitStrategyName(strat) << ": " << why;
        }
    }
}

TEST(RotAlloc, LifetimeLongerThanWholeFileFails)
{
    DdgBuilder b("long");
    const NodeId ld = b.load();
    const NodeId add = b.add();
    b.flow(ld, add, 9);  // Lifetime ~ 9*II.
    const NodeId st = b.store();
    b.flow(add, st);
    const Ddg g = b.take();

    Schedule s(2, 3);
    s.set(ld, 0, 0);
    s.set(add, 2, 0);
    s.set(st, 6, 0);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    ASSERT_GT(info.of(ld).length(), 2 * 8);
    EXPECT_FALSE(allocateRotating(info, 8).ok);
    EXPECT_TRUE(minRotatingRegs(info) >= 10);
}

TEST(RotAlloc, AllocationOutcomeAddsInvariants)
{
    const Ddg g = buildPaperExampleLoop();  // One invariant 'a'.
    const Schedule s = paperFlatSchedule(2);
    const AllocationOutcome out = allocateLoop(g, s, 32);
    EXPECT_TRUE(out.fits);
    EXPECT_EQ(out.invariants, 1);
    EXPECT_EQ(out.regsRequired, out.rotating + 1);
    EXPECT_GE(out.rotating, out.maxLive);

    const AllocationOutcome tight = allocateLoop(g, s, out.regsRequired);
    EXPECT_TRUE(tight.fits);
    const AllocationOutcome tooTight =
        allocateLoop(g, s, out.regsRequired - 1);
    EXPECT_FALSE(tooTight.fits);
}

TEST(RotAlloc, DeadAndZeroLengthValuesNeedNoRegister)
{
    DdgBuilder b("dead");
    const NodeId ld = b.load();
    const NodeId st = b.store();
    b.flow(ld, st);
    const NodeId deadLd = b.load("dead");
    (void)deadLd;
    const Ddg g = b.take();

    Schedule s(1, 3);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 0, 1);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    const RotAllocResult alloc =
        allocateRotating(info, minRotatingRegs(info));
    EXPECT_TRUE(alloc.ok);
    EXPECT_EQ(alloc.offset[std::size_t(deadLd)], -1);
    EXPECT_GE(alloc.offset[std::size_t(ld)], 0);
}

TEST(RotAlloc, EndFitTracksMaxLiveOnScheduledLoops)
{
    // Property: on real HRMS schedules, end-fit adjacency allocation
    // stays within MaxLive + 1 (the paper's [26] observation).
    const Machine m = Machine::p2l4();
    HrmsScheduler hrms;
    const Ddg g = buildPaperExampleLoop();
    for (int ii = mii(g, m); ii <= mii(g, m) + 8; ++ii) {
        const auto s = hrms.scheduleAt(g, m, ii);
        ASSERT_TRUE(s.has_value());
        const LifetimeInfo info = analyzeLifetimes(g, *s);
        const int regs = minRotatingRegs(info);
        EXPECT_LE(regs, info.maxLive + 1) << "ii=" << ii;
    }
}

} // namespace
} // namespace swp
