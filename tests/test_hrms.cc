/**
 * @file
 * HRMS scheduler tests: the worked example, recurrences, resource
 * saturation, group handling and the pre-ordering invariant.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ir/builder.hh"
#include "liferange/lifetimes.hh"
#include "machine/machine.hh"
#include "sched/groups.hh"
#include "sched/hrms.hh"
#include "sched/ii_search.hh"
#include "sched/mii.hh"
#include "spill/insert.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

TEST(Hrms, SchedulesPaperExampleAtIiOne)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    HrmsScheduler hrms;
    auto s = hrms.scheduleAt(g, m, 1);
    ASSERT_TRUE(s.has_value());
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, *s, &why)) << why;

    // Figure 2: MaxLive 11 at II=1 (the chain Ld->*->+->St is rigid, so
    // any valid II=1 schedule of this graph has the same lifetimes).
    const LifetimeInfo info = analyzeLifetimes(g, *s);
    EXPECT_EQ(info.maxLive, 11);
}

TEST(Hrms, IiTwoHalvesThePressure)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    HrmsScheduler hrms;
    auto s = hrms.scheduleAt(g, m, 2);
    ASSERT_TRUE(s.has_value());
    const LifetimeInfo info = analyzeLifetimes(g, *s);
    // Figure 3: 7 registers at II=2.
    EXPECT_EQ(info.maxLive, 7);
}

TEST(Hrms, FailsBelowRecMii)
{
    DdgBuilder b("rec");
    const NodeId a = b.add("a");
    b.flow(a, a, 1);
    const NodeId st = b.store();
    b.flow(a, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    HrmsScheduler hrms;
    EXPECT_FALSE(hrms.scheduleAt(g, m, 3).has_value());
    EXPECT_TRUE(hrms.scheduleAt(g, m, 4).has_value());
}

TEST(Hrms, AchievesMiiOnResourceBoundLoops)
{
    // 8 independent load->store streams: ResMII = 8 on P2L4.
    DdgBuilder b("streams");
    for (int i = 0; i < 8; ++i) {
        const NodeId ld = b.load();
        const NodeId st = b.store();
        b.flow(ld, st);
    }
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();
    ASSERT_EQ(mii(g, m), 8);

    HrmsScheduler hrms;
    const auto s = hrms.scheduleAt(g, m, 8);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->ii(), 8);
}

TEST(Hrms, HandlesNonPipelinedDivide)
{
    DdgBuilder b("dv");
    const NodeId ld = b.load();
    const NodeId dv = b.div();
    const NodeId st = b.store();
    b.flow(ld, dv);
    b.flow(dv, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    HrmsScheduler hrms;
    EXPECT_FALSE(hrms.scheduleAt(g, m, 16).has_value());
    const auto s = hrms.scheduleAt(g, m, 17);
    ASSERT_TRUE(s.has_value());
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, *s, &why)) << why;
}

TEST(Hrms, SchedulesFusedGroupsAtExactOffsets)
{
    DdgBuilder b("fused");
    const NodeId ld = b.load("Ls");
    const NodeId mul = b.mul("*");
    const NodeId st = b.store("st");
    b.graph().addEdge(ld, mul, DepKind::RegFlow, 0, true);
    b.flow(mul, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    HrmsScheduler hrms;
    const auto s = hrms.scheduleAt(g, m, 1);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->time(mul) - s->time(ld), m.latency(Opcode::Load));
}

TEST(Hrms, IiSearchStopsAtFirstFeasible)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::p2l4();
    HrmsScheduler hrms;
    const IiSearchResult r = searchIi(hrms, g, m, mii(g, m));
    ASSERT_TRUE(r.sched.has_value());
    EXPECT_EQ(r.attempts, r.sched->ii() - r.startIi + 1);
}

/**
 * The HRMS pre-ordering property: when a node is appended, its already
 * appended neighbours are only predecessors or only successors —
 * except for nodes inside recurrences, which legitimately see both.
 */
TEST(Hrms, OrderingHasTheNeighbourhoodProperty)
{
    // A layered DAG with fan-in/fan-out.
    DdgBuilder b("dag");
    std::vector<NodeId> lds;
    for (int i = 0; i < 4; ++i)
        lds.push_back(b.load());
    std::vector<NodeId> muls;
    for (int i = 0; i < 3; ++i) {
        const NodeId m = b.mul();
        b.flow(lds[std::size_t(i)], m);
        b.flow(lds[std::size_t(i + 1)], m);
        muls.push_back(m);
    }
    const NodeId a1 = b.add();
    b.flow(muls[0], a1);
    b.flow(muls[1], a1);
    const NodeId a2 = b.add();
    b.flow(a1, a2);
    b.flow(muls[2], a2);
    const NodeId st = b.store();
    b.flow(a2, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    HrmsScheduler hrms;
    const auto order = hrms.orderingForTest(g, m, mii(g, m));
    ASSERT_EQ(order.size(), std::size_t(g.numNodes()));

    // Singleton groups here: group index == node id modulo renumbering;
    // recover node order via GroupSet.
    const GroupSet groups(g, m);
    std::set<NodeId> placed;
    for (int gi : order) {
        const NodeId v = groups.group(gi).members[0];
        bool hasPred = false, hasSucc = false;
        for (EdgeId e : g.inEdges(v)) {
            if (placed.count(g.edge(e).src))
                hasPred = true;
        }
        for (EdgeId e : g.outEdges(v)) {
            if (placed.count(g.edge(e).dst))
                hasSucc = true;
        }
        EXPECT_FALSE(hasPred && hasSucc)
            << "node " << g.node(v).name << " sees both sides";
        placed.insert(v);
    }
}

TEST(Hrms, BidirectionalPlacementShortensLifetimes)
{
    // A producer consumed very late via a long chain, plus an
    // independent second producer: HRMS should schedule the second
    // producer near its (late) consumer, not greedily early.
    DdgBuilder b("late");
    const NodeId ld1 = b.load("ld1");
    NodeId chain = ld1;
    for (int i = 0; i < 4; ++i) {
        const NodeId a = b.add();
        b.flow(chain, a);
        chain = a;
    }
    const NodeId ld2 = b.load("ld2");
    const NodeId fin = b.add("fin");
    b.flow(chain, fin);
    b.flow(ld2, fin);
    const NodeId st = b.store();
    b.flow(fin, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    HrmsScheduler hrms;
    const auto s = hrms.scheduleAt(g, m, mii(g, m));
    ASSERT_TRUE(s.has_value());
    // ld2's value must not live across the whole chain: its lifetime
    // should be a small constant (latency-ish), not ~4 adds deep.
    const LifetimeInfo info = analyzeLifetimes(g, *s);
    EXPECT_LE(info.of(ld2).length(), 2 * m.latency(Opcode::Load) + 2);
}

/**
 * Regression: two opposing reduction spines over shared loads (the
 * apsi47 shape) once defeated the pre-ordering — two placement fronts
 * met at an unordered node whose window was empty at *every* II. The
 * cone-based ordering must schedule the spilled form at its MII.
 */
TEST(Hrms, OpposingSpinesScheduleAfterSpilling)
{
    Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    HrmsScheduler hrms;

    const auto first = hrms.scheduleAt(g, m, mii(g, m));
    ASSERT_TRUE(first.has_value());
    const LifetimeInfo info = analyzeLifetimes(g, *first);
    const auto pick =
        selectOne(spillCandidates(g, info), SpillHeuristic::MaxLTOverTraf);
    ASSERT_TRUE(pick.has_value());
    insertSpill(g, m, *pick);

    // Must recover within a cycle or two of the new MII, not "never".
    const int lower = mii(g, m);
    bool scheduled = false;
    for (int ii = lower; ii <= lower + 2 && !scheduled; ++ii)
        scheduled = hrms.scheduleAt(g, m, ii).has_value();
    EXPECT_TRUE(scheduled);
}

/**
 * Regression: two distinct recurrences joined by a zero-distance edge.
 * If the less critical one is placed first, the edge's source faces a
 * fixed gap no II can widen; the ordering must place components in the
 * topological order of zero-distance reachability.
 */
TEST(Hrms, ZeroDistanceEdgeBetweenRecurrences)
{
    DdgBuilder b("twoscc");
    // SCC A (more critical): a1 -> a2 -> a1 (distance 1).
    const NodeId a1 = b.add("a1");
    const NodeId a2 = b.mul("a2");
    b.flow(a1, a2);
    b.flow(a2, a1, 1);
    // SCC B (less critical): b1 -> b2 -> b1 (distance 2), entered from
    // A through a zero-distance edge a2 -> b1.
    const NodeId b1 = b.add("b1");
    const NodeId b2 = b.mul("b2");
    b.flow(b1, b2);
    b.flow(b2, b1, 2);
    b.flow(a2, b1);
    const NodeId st = b.store("st");
    b.flow(b2, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    HrmsScheduler hrms;
    const int lower = mii(g, m);
    const auto s = hrms.scheduleAt(g, m, lower);
    ASSERT_TRUE(s.has_value()) << "must schedule at MII=" << lower;
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, *s, &why)) << why;
}

TEST(Hrms, ReusedSchedulerMatchesFreshSchedulerAcrossLoops)
{
    // The workspace (MRT storage, priority buffers, reach matrices,
    // recurrence cache) is reused across probes; interleaving loops,
    // machines and IIs through one scheduler object must yield exactly
    // the schedules a fresh scheduler produces — stale workspace state
    // anywhere would diverge here.
    SuiteParams params;
    params.numLoops = 10;
    const std::vector<SuiteLoop> suite = generateSuite(params);
    const Machine machines[] = {Machine::p1l4(), Machine::p2l4()};
    HrmsScheduler reused;
    for (const SuiteLoop &loop : suite) {
        for (const Machine &m : machines) {
            const int lower = mii(loop.graph, m);
            for (int ii = std::max(1, lower - 1); ii < lower + 3; ++ii) {
                HrmsScheduler fresh;
                const auto a = reused.scheduleAt(loop.graph, m, ii);
                const auto b = fresh.scheduleAt(loop.graph, m, ii);
                ASSERT_EQ(a.has_value(), b.has_value())
                    << loop.graph.name() << " on " << m.name()
                    << " ii=" << ii;
                if (!a)
                    continue;
                for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
                    ASSERT_EQ(a->time(v), b->time(v));
                    ASSERT_EQ(a->unit(v), b->unit(v));
                }
            }
        }
    }
}

TEST(Hrms, EveryScheduleValidatesOnSuiteSample)
{
    // Smoke over a few deterministic shapes at several IIs.
    const Machine machines[] = {Machine::p1l4(), Machine::p2l4(),
                                Machine::p2l6()};
    const Ddg g = buildPaperExampleLoop();
    HrmsScheduler hrms;
    for (const Machine &m : machines) {
        for (int ii = mii(g, m); ii < mii(g, m) + 6; ++ii) {
            const auto s = hrms.scheduleAt(g, m, ii);
            ASSERT_TRUE(s.has_value()) << m.name() << " ii=" << ii;
            std::string why;
            EXPECT_TRUE(validateSchedule(g, m, *s, &why)) << why;
        }
    }
}

} // namespace
} // namespace swp
