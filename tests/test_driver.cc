/**
 * @file
 * Batch driver tests: deterministic results at any thread count on the
 * pinned-seed suite — with the schedule memo on or off — the
 * single-flight MII/RecMII and schedule memos, the persistent worker
 * pool, and the parallel-for primitive.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "driver/suite_runner.hh"
#include "sched/fingerprint.hh"
#include "sched/mii.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

/** A small pinned-seed suite plus a mixed job grid over it. */
std::vector<SuiteLoop>
testSuite(int loops)
{
    SuiteParams params;  // Pinned default seed.
    params.numLoops = loops;
    return generateSuite(params);
}

std::vector<BatchJob>
mixedGrid(std::size_t loops)
{
    std::vector<BatchJob> jobs;
    for (std::size_t i = 0; i < loops; ++i) {
        BatchJob spill;
        spill.loop = int(i);
        spill.strategy = Strategy::Spill;
        spill.options.registers = 32;
        spill.options.multiSelect = true;
        spill.options.reuseLastIi = true;
        jobs.push_back(spill);

        BatchJob incr;
        incr.loop = int(i);
        incr.strategy = Strategy::IncreaseII;
        incr.options.registers = 32;
        jobs.push_back(incr);

        BatchJob ideal;
        ideal.loop = int(i);
        ideal.ideal = true;
        jobs.push_back(ideal);

        BatchJob best;
        best.loop = int(i);
        best.strategy = Strategy::BestOfAll;
        best.options.registers = 16;
        best.options.multiSelect = true;
        best.options.reuseLastIi = true;
        jobs.push_back(best);
    }
    return jobs;
}

void
expectIdenticalResults(const PipelineResult &a, const PipelineResult &b,
                       std::size_t job)
{
    EXPECT_EQ(a.success, b.success) << "job " << job;
    EXPECT_EQ(a.usedFallback, b.usedFallback) << "job " << job;
    EXPECT_EQ(a.mii, b.mii) << "job " << job;
    EXPECT_EQ(a.rounds, b.rounds) << "job " << job;
    EXPECT_EQ(a.attempts, b.attempts) << "job " << job;
    EXPECT_EQ(a.spilledLifetimes, b.spilledLifetimes) << "job " << job;
    EXPECT_EQ(a.strategy, b.strategy) << "job " << job;
    EXPECT_EQ(a.ii(), b.ii()) << "job " << job;
    EXPECT_EQ(a.alloc.regsRequired, b.alloc.regsRequired)
        << "job " << job;
    EXPECT_EQ(a.alloc.maxLive, b.alloc.maxLive) << "job " << job;
    EXPECT_EQ(a.memOpsPerIteration(), b.memOpsPerIteration())
        << "job " << job;
    ASSERT_EQ(a.graph().numNodes(), b.graph().numNodes())
        << "job " << job;
    for (NodeId n = 0; n < a.graph().numNodes(); ++n) {
        EXPECT_EQ(a.sched.time(n), b.sched.time(n))
            << "job " << job << " node " << n;
        EXPECT_EQ(a.sched.unit(n), b.sched.unit(n))
            << "job " << job << " node " << n;
    }
}

TEST(SuiteRunner, ResultsIdenticalAtOneAndManyThreads)
{
    const std::vector<SuiteLoop> suite = testSuite(40);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner serial(1);
    SuiteRunner pooled(4);
    const auto a = serial.run(suite, m, jobs);
    const auto b = pooled.run(suite, m, jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdenticalResults(a[i], b[i], i);

    // The harnesses' accumulated floating-point totals must also match
    // bit-for-bit: same values reduced in the same (index) order.
    double cyclesA = 0, cyclesB = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const long w = suite[std::size_t(jobs[i].loop)].iterations;
        cyclesA += double(a[i].ii()) * double(w);
        cyclesB += double(b[i].ii()) * double(w);
    }
    EXPECT_EQ(cyclesA, cyclesB);
}

TEST(SuiteRunner, RepeatedRunsAreIdentical)
{
    // The MII memo and scheduler reuse must not make a second pass over
    // the same grid diverge from the first.
    const std::vector<SuiteLoop> suite = testSuite(12);
    const Machine m = Machine::p1l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner runner(3);
    const auto first = runner.run(suite, m, jobs);
    const auto second = runner.run(suite, m, jobs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdenticalResults(first[i], second[i], i);
}

TEST(SuiteRunner, BoundsMatchDirectComputation)
{
    const std::vector<SuiteLoop> suite = testSuite(8);
    SuiteRunner runner(2);
    for (const Machine &m : {Machine::p1l4(), Machine::p2l6()}) {
        for (const SuiteLoop &loop : suite) {
            const SuiteRunner::LoopBounds b = runner.bounds(loop.graph, m);
            EXPECT_EQ(b.mii, mii(loop.graph, m)) << loop.graph.name();
            EXPECT_EQ(b.recMii, recMii(loop.graph, m))
                << loop.graph.name();
            // Second lookup hits the memo and must agree.
            const SuiteRunner::LoopBounds again =
                runner.bounds(loop.graph, m);
            EXPECT_EQ(again.mii, b.mii);
            EXPECT_EQ(again.recMii, b.recMii);
        }
    }
}

TEST(SuiteRunner, BoundsDistinguishSameNamedMachines)
{
    // The memo key must reflect the machine's configuration, not just
    // its (non-unique) name.
    const std::vector<SuiteLoop> suite = testSuite(1);
    const Ddg &g = suite[0].graph;
    const Machine wide = Machine::universal("m", 8, 2);
    const Machine narrow = Machine::universal("m", 1, 2);
    SuiteRunner runner(1);
    EXPECT_EQ(runner.bounds(g, wide).mii, mii(g, wide));
    EXPECT_EQ(runner.bounds(g, narrow).mii, mii(g, narrow));
    EXPECT_GT(runner.bounds(g, narrow).mii, runner.bounds(g, wide).mii);
}

TEST(SuiteRunner, ScheduleMemoOnOffAndThreadCountsAllAgree)
{
    // The schedule memo changes the work, never the answer: every
    // combination of memo on/off and 1/N threads yields bit-identical
    // results.
    const std::vector<SuiteLoop> suite = testSuite(16);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner memoSerial(1, true);
    SuiteRunner memoPooled(4, true);
    SuiteRunner plainSerial(1, false);
    SuiteRunner plainPooled(4, false);

    const auto a = memoSerial.run(suite, m, jobs);
    const auto b = memoPooled.run(suite, m, jobs);
    const auto c = plainSerial.run(suite, m, jobs);
    const auto d = plainPooled.run(suite, m, jobs);
    ASSERT_EQ(a.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdenticalResults(a[i], b[i], i);
        expectIdenticalResults(a[i], c[i], i);
        expectIdenticalResults(a[i], d[i], i);
    }

    // The memoized runners actually used the memo; the plain ones never
    // touched it.
    EXPECT_GT(memoSerial.memoStats().schedule.requests, 0);
    EXPECT_GT(memoPooled.memoStats().schedule.requests, 0);
    EXPECT_EQ(plainSerial.memoStats().schedule.requests, 0);
    EXPECT_EQ(plainPooled.memoStats().schedule.requests, 0);
}

TEST(SuiteRunner, ScheduleMemoEliminatesReworkAcrossBatches)
{
    // A second pass over the same grid must hit the memo on every
    // probe: zero new scheduler computations.
    const std::vector<SuiteLoop> suite = testSuite(10);
    const Machine m = Machine::p1l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner runner(3);
    const auto first = runner.run(suite, m, jobs);
    const auto statsAfterFirst = runner.memoStats();
    EXPECT_GT(statsAfterFirst.schedule.computes, 0);
    EXPECT_LT(statsAfterFirst.schedule.computes,
              statsAfterFirst.schedule.requests)
        << "the grid itself repeats probes (best-of-all, ideal/spill "
           "overlap) that the memo must serve from cache";

    const auto second = runner.run(suite, m, jobs);
    const auto statsAfterSecond = runner.memoStats();
    EXPECT_EQ(statsAfterSecond.schedule.computes,
              statsAfterFirst.schedule.computes)
        << "re-running an identical batch scheduled something again";
    EXPECT_GT(statsAfterSecond.schedule.requests,
              statsAfterFirst.schedule.requests);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdenticalResults(first[i], second[i], i);
}

TEST(SuiteRunner, MemosAreSingleFlight)
{
    // Two workers must never compute the same memo key: the number of
    // computations equals the number of distinct keys, with all the
    // rest of the traffic served as hits (duplicate-compute count is
    // exactly zero).
    const std::vector<SuiteLoop> suite = testSuite(6);
    const Machine m = Machine::p2l6();
    SuiteRunner runner(8);

    runner.parallelFor(48, [&](std::size_t i) {
        (void)runner.bounds(suite[i % suite.size()].graph, m);
    });
    const SingleFlightStats bounds = runner.memoStats().bounds;
    EXPECT_EQ(bounds.requests, 48);
    EXPECT_EQ(bounds.entries, long(suite.size()));
    EXPECT_EQ(bounds.computes - bounds.entries, 0)
        << "two workers raced to compute one key's MII/RecMII";

    const std::vector<BatchJob> jobs = mixedGrid(suite.size());
    (void)runner.run(suite, m, jobs);
    const SingleFlightStats sched = runner.memoStats().schedule;
    EXPECT_GT(sched.requests, 0);
    EXPECT_EQ(sched.computes - sched.entries, 0)
        << "two workers raced to schedule one probe";
}

TEST(SuiteRunner, PoolSurvivesAFailedBatchAndRunsAgain)
{
    // The persistent pool must come back clean after a batch whose jobs
    // throw: the next dispatch reuses the same threads and completes.
    SuiteRunner runner(4);
    EXPECT_THROW(runner.parallelFor(64,
                                    [](std::size_t i) {
                                        if (i % 7 == 3)
                                            throw std::runtime_error("x");
                                    }),
                 std::runtime_error);

    std::vector<int> hits(500, 0);
    runner.parallelFor(hits.size(),
                       [&](std::size_t i) { hits[i] += int(i) + 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], int(i) + 1) << i;
}

TEST(SuiteRunner, NestedParallelForRunsInlineWithoutDeadlock)
{
    // A job that itself calls parallelFor on the same runner must not
    // deadlock waiting for the pool its own batch occupies.
    SuiteRunner runner(4);
    std::vector<int> outer(16, 0);
    runner.parallelFor(outer.size(), [&](std::size_t i) {
        int inner = 0;
        runner.parallelFor(8, [&](std::size_t) { ++inner; });
        outer[i] = inner;
    });
    for (std::size_t i = 0; i < outer.size(); ++i)
        EXPECT_EQ(outer[i], 8) << i;
}

TEST(Fingerprint, EquivalenceMatchesFingerprintCoverage)
{
    // The debug collision check compares exactly the structure the
    // fingerprints hash: scheduling-relevant differences break
    // equivalence, irrelevant ones (node names) do not.
    const std::vector<SuiteLoop> suite = testSuite(2);
    const Ddg &a = suite[0].graph;
    EXPECT_TRUE(graphsFingerprintEquivalent(a, a));

    Ddg sameStructure = a;
    sameStructure.node(0).name = "renamed";  // Detaches the CoW copy.
    EXPECT_FALSE(sameStructure.sharesStorageWith(a));
    EXPECT_TRUE(graphsFingerprintEquivalent(a, sameStructure));
    EXPECT_EQ(graphFingerprint(a), graphFingerprint(sameStructure));

    Ddg changedDistance = a;
    changedDistance.edge(0).distance += 1;
    EXPECT_FALSE(graphsFingerprintEquivalent(a, changedDistance));
    EXPECT_NE(graphFingerprint(a), graphFingerprint(changedDistance));

    EXPECT_FALSE(graphsFingerprintEquivalent(a, suite[1].graph));

    const Machine p2l4 = Machine::p2l4();
    EXPECT_TRUE(machinesFingerprintEquivalent(p2l4, Machine::p2l4()));
    EXPECT_FALSE(machinesFingerprintEquivalent(p2l4, Machine::p2l6()));
    EXPECT_FALSE(machinesFingerprintEquivalent(
        Machine::universal("m", 8, 2), Machine::universal("m", 1, 2)));
}

TEST(SuiteRunner, ParallelForCoversEveryIndexOnce)
{
    SuiteRunner runner(8);
    std::vector<int> hits(1000, 0);
    runner.parallelFor(hits.size(),
                       [&](std::size_t i) { hits[i] += int(i) + 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], int(i) + 1) << i;
}

TEST(SuiteRunner, ExceptionsPropagateToTheCaller)
{
    SuiteRunner runner(4);
    EXPECT_THROW(runner.parallelFor(64,
                                    [](std::size_t i) {
                                        if (i == 17)
                                            throw std::runtime_error("x");
                                    }),
                 std::runtime_error);
}

TEST(SuiteRunner, ZeroThreadsSelectsHardwareConcurrency)
{
    SuiteRunner runner(0);
    EXPECT_GE(runner.threads(), 1);
}

TEST(SuiteRunner, ChunkPoliciesShardsAndThreadsAllAgree)
{
    // Ordering, chunking, and sharding change when (and where) a job
    // runs — never its result: every combination agrees slot for slot
    // with the serial baseline on the slots it evaluated.
    const std::vector<SuiteLoop> suite = testSuite(10);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner serial(1);
    const auto baseline = serial.run(suite, m, jobs);

    for (const ChunkPolicy chunk :
         {ChunkPolicy::Auto, ChunkPolicy::Fixed}) {
        for (const int threads : {1, 4}) {
            for (const int shards : {1, 3}) {
                for (int s = 0; s < shards; ++s) {
                    SuiteRunner runner(threads);
                    RunOptions opts;
                    opts.shard = ShardSpec{s, shards};
                    opts.chunk = chunk;
                    const auto results =
                        runner.run(suite, m, jobs, opts);
                    ASSERT_EQ(results.size(), jobs.size());
                    for (std::size_t i = 0; i < jobs.size(); ++i) {
                        if (opts.shard.owns(i))
                            expectIdenticalResults(baseline[i],
                                                   results[i], i);
                    }
                }
            }
        }
    }
}

TEST(SuiteRunner, PlanJobOrderIsAHeaviestFirstPermutation)
{
    const std::vector<SuiteLoop> suite = testSuite(24);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());
    SuiteRunner runner(1);

    RunOptions opts;  // Auto policy, no shard.
    const std::vector<std::size_t> order =
        runner.planJobOrder(suite, m, jobs, opts);
    ASSERT_EQ(order.size(), jobs.size());
    std::vector<bool> seen(jobs.size(), false);
    double prev = std::numeric_limits<double>::infinity();
    for (const std::size_t i : order) {
        ASSERT_LT(i, jobs.size());
        EXPECT_FALSE(seen[i]) << "index " << i << " planned twice";
        seen[i] = true;
        const double cost = runner.jobCost(suite, m, jobs[i]);
        EXPECT_LE(cost, prev) << "order is not heaviest-first at " << i;
        prev = cost;
    }

    // The plan is deterministic, sharded plans partition it, and the
    // fixed policy preserves grid order.
    EXPECT_EQ(order, runner.planJobOrder(suite, m, jobs, opts));
    for (int s = 0; s < 3; ++s) {
        RunOptions sharded;
        sharded.shard = ShardSpec{s, 3};
        for (const std::size_t i :
             runner.planJobOrder(suite, m, jobs, sharded))
            EXPECT_TRUE(sharded.shard.owns(i));
    }
    RunOptions fixed;
    fixed.chunk = ChunkPolicy::Fixed;
    const std::vector<std::size_t> gridOrder =
        runner.planJobOrder(suite, m, jobs, fixed);
    for (std::size_t k = 0; k < gridOrder.size(); ++k)
        EXPECT_EQ(gridOrder[k], k);
}

TEST(SuiteRunner, ChunkingNeverReordersResultsOnRandomGrids)
{
    // Property/fuzz over seeded random DDG suites: whatever the cost
    // model decides, results stay slot-addressed and byte-identical
    // across policies and thread counts.
    for (const std::uint64_t seed : {1ull, 99ull, 0xdecafull}) {
        SuiteParams params;
        params.seed = seed;
        params.numLoops = 8;
        const std::vector<SuiteLoop> suite = generateSuite(params);
        const Machine m = Machine::p1l4();
        const std::vector<BatchJob> jobs = mixedGrid(suite.size());

        SuiteRunner serial(1);
        const auto baseline = serial.run(suite, m, jobs);
        for (const ChunkPolicy chunk :
             {ChunkPolicy::Auto, ChunkPolicy::Fixed}) {
            SuiteRunner pooled(4);
            RunOptions opts;
            opts.chunk = chunk;
            const auto results = pooled.run(suite, m, jobs, opts);
            for (std::size_t i = 0; i < jobs.size(); ++i)
                expectIdenticalResults(baseline[i], results[i], i);
        }
    }
}

TEST(SuiteRunner, HeaviestFirstOrderingImprovesHeavyTailLoadSpread)
{
    // The load-balance claim behind ChunkPolicy::Auto, asserted on the
    // claiming-discipline model: on a heavy-tailed grid whose heavy
    // jobs sit at the tail (the pathological case for static
    // partitioning), heaviest-first ordering with fine-grained claims
    // strictly shrinks the makespan.
    const int workers = 4;
    std::vector<double> costs(64, 1.0);
    for (std::size_t i = costs.size() - 4; i < costs.size(); ++i)
        costs[i] = 40.0;  // Heavy tail.

    std::vector<std::size_t> gridOrder(costs.size());
    std::iota(gridOrder.begin(), gridOrder.end(), 0);
    std::vector<std::size_t> heavyFirst = gridOrder;
    std::stable_sort(heavyFirst.begin(), heavyFirst.end(),
                     [&](std::size_t a, std::size_t b) {
                         return costs[a] > costs[b];
                     });

    // Static partitioning = grid order claimed in ceil(n/workers)
    // blocks; the tuned policy = heaviest-first, one job per claim.
    const std::size_t block =
        (costs.size() + std::size_t(workers) - 1) / std::size_t(workers);
    const std::vector<double> staticLoads =
        simulateWorkerLoads(costs, gridOrder, workers, block);
    const std::vector<double> autoLoads =
        simulateWorkerLoads(costs, heavyFirst, workers, 1);

    const auto makespan = [](const std::vector<double> &loads) {
        return *std::max_element(loads.begin(), loads.end());
    };
    EXPECT_LT(makespan(autoLoads), makespan(staticLoads));

    // Both disciplines execute all the work exactly once.
    const double total =
        std::accumulate(costs.begin(), costs.end(), 0.0);
    EXPECT_DOUBLE_EQ(
        std::accumulate(staticLoads.begin(), staticLoads.end(), 0.0),
        total);
    EXPECT_DOUBLE_EQ(
        std::accumulate(autoLoads.begin(), autoLoads.end(), 0.0),
        total);

    // And on the real cost model: the heaviest-first plan of a real
    // grid never yields a worse simulated makespan than grid order at
    // the same (fine) claiming grain.
    const std::vector<SuiteLoop> suite = testSuite(32);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());
    SuiteRunner runner(1);
    std::vector<double> gridCosts(jobs.size());
    std::vector<std::size_t> byIndex(jobs.size());
    std::iota(byIndex.begin(), byIndex.end(), 0);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        gridCosts[i] = runner.jobCost(suite, m, jobs[i]);
    const std::vector<std::size_t> planned =
        runner.planJobOrder(suite, m, jobs);
    EXPECT_LE(makespan(simulateWorkerLoads(gridCosts, planned, workers,
                                           1)),
              makespan(simulateWorkerLoads(gridCosts, byIndex, workers,
                                           1)));
}

TEST(SuiteRunner, MemoCapLruMatchesUncappedByteForByte)
{
    // The --memo-cap regression: a tightly capped memo evicts and
    // recomputes, yet every result matches the uncapped run, and the
    // single-flight guarantee survives eviction (computes accounts for
    // exactly the resident entries plus the evicted ones — never a
    // duplicate in-flight computation).
    const std::vector<SuiteLoop> suite = testSuite(12);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner uncapped(3, true);
    SuiteRunner capped(3, true, 8);
    EXPECT_EQ(capped.scheduleMemo().capacity(), 8u);

    const auto a = uncapped.run(suite, m, jobs);
    const auto b = capped.run(suite, m, jobs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdenticalResults(a[i], b[i], i);

    const SingleFlightStats capStats = capped.memoStats().schedule;
    EXPECT_GT(capStats.evictions, 0)
        << "an 8-entry cap on this grid must evict";
    EXPECT_LE(capStats.entries, 8);
    EXPECT_EQ(capStats.computes, capStats.entries + capStats.evictions)
        << "eviction broke the single-flight accounting";

    const SingleFlightStats fullStats = uncapped.memoStats().schedule;
    EXPECT_EQ(fullStats.evictions, 0);

    // A second pass still agrees (evicted entries recompute the same
    // outcomes). The uncapped memo serves it entirely from cache; the
    // capped one must recompute what it evicted.
    const auto c = capped.run(suite, m, jobs);
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdenticalResults(a[i], c[i], i);
    (void)uncapped.run(suite, m, jobs);
    EXPECT_EQ(uncapped.memoStats().schedule.computes,
              fullStats.computes);
    EXPECT_GT(capped.memoStats().schedule.computes, capStats.computes)
        << "evicted entries must be recomputed on re-request";

    SuiteRunner roomy(3, true, 1 << 20);
    const auto d = roomy.run(suite, m, jobs);
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdenticalResults(a[i], d[i], i);
    EXPECT_EQ(roomy.memoStats().schedule.evictions, 0);
    EXPECT_EQ(roomy.memoStats().schedule.computes, fullStats.computes);
}

TEST(SuiteRunner, BoundsMemoHonorsTheCapToo)
{
    // --memo-cap bounds *every* memo in the process: the MII/RecMII
    // bounds memo evicts LRU entries like the schedule memo, results
    // stay byte-identical, and evicted bounds recompute correctly.
    const std::vector<SuiteLoop> suite = testSuite(12);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner uncapped(2, true);
    SuiteRunner capped(2, true, 4);

    const auto a = uncapped.run(suite, m, jobs);
    const auto b = capped.run(suite, m, jobs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdenticalResults(a[i], b[i], i);

    const SingleFlightStats cb = capped.memoStats().bounds;
    EXPECT_LE(cb.entries, 4);
    EXPECT_GT(cb.evictions, 0)
        << "a 4-entry cap over 12 distinct loops must evict bounds";
    EXPECT_EQ(cb.computes, cb.entries + cb.evictions)
        << "eviction broke the bounds memo's single-flight accounting";
    EXPECT_EQ(uncapped.memoStats().bounds.evictions, 0);

    // Evicted bounds recompute to the same values on direct queries.
    for (const SuiteLoop &loop : suite) {
        const SuiteRunner::LoopBounds lb = capped.bounds(loop.graph, m);
        EXPECT_EQ(lb.mii, mii(loop.graph, m));
        EXPECT_EQ(lb.recMii, recMii(loop.graph, m));
    }
}

TEST(SuiteRunner, StripedMemosStayByteIdenticalAcrossThreadCounts)
{
    // The striping regression: both memos stripe by thread count (and
    // clamp to the cap), yet every result matches the serial run,
    // capped or not, and the aggregated stripe stats still satisfy the
    // flat cache's single-flight accounting invariant.
    const std::vector<SuiteLoop> suite = testSuite(16);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner serial(1, true);
    SuiteRunner pooled(8, true);
    SuiteRunner capped(8, true, 8);

    // next-pow2(2 x threads); the 8-entry cap clamps to 8 stripes of 1.
    EXPECT_EQ(serial.scheduleMemo().stripeCount(), 2u);
    EXPECT_EQ(pooled.scheduleMemo().stripeCount(), 16u);
    EXPECT_EQ(capped.scheduleMemo().stripeCount(), 8u);
    EXPECT_EQ(serial.boundsStripeCount(), 2u);
    EXPECT_EQ(pooled.boundsStripeCount(), 16u);
    EXPECT_EQ(capped.boundsStripeCount(), 8u);

    const auto a = serial.run(suite, m, jobs);
    const auto b = pooled.run(suite, m, jobs);
    const auto c = capped.run(suite, m, jobs);
    ASSERT_EQ(a.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdenticalResults(a[i], b[i], i);
        expectIdenticalResults(a[i], c[i], i);
    }

    const SingleFlightStats full = pooled.memoStats().schedule;
    EXPECT_EQ(full.evictions, 0);
    EXPECT_EQ(full.computes, full.entries + full.evictions);

    const SingleFlightStats cap = capped.memoStats().schedule;
    EXPECT_LE(cap.entries, 8);
    EXPECT_GT(cap.evictions, 0);
    EXPECT_EQ(cap.computes, cap.entries + cap.evictions)
        << "striping broke the single-flight accounting";
    const SingleFlightStats capBounds = capped.memoStats().bounds;
    EXPECT_EQ(capBounds.computes, capBounds.entries + capBounds.evictions);
}

TEST(SuiteRunner, WorkStealingDeterministicAcrossInterleavings)
{
    // Results must not depend on which worker claims or steals which
    // chunk. The jitter hook perturbs every claim with a seeded spin,
    // forcing 20 different steal interleavings; all must match the
    // serial run byte-for-byte.
    const std::vector<SuiteLoop> suite = testSuite(10);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner serial(1);
    const auto baseline = serial.run(suite, m, jobs);

    for (unsigned seed = 1; seed <= 20; ++seed) {
        SuiteRunner::setClaimJitterForTesting(seed);
        SuiteRunner pooled(8);
        const auto results = pooled.run(suite, m, jobs);
        ASSERT_EQ(results.size(), baseline.size()) << "seed " << seed;
        for (std::size_t i = 0; i < results.size(); ++i)
            expectIdenticalResults(baseline[i], results[i], i);
    }
    SuiteRunner::setClaimJitterForTesting(0);
}

TEST(SuiteRunner, StealingModelBeatsStaticPartitionAndConservesWork)
{
    // The load-balance claim behind work-stealing, on the same
    // heavy-tailed grid as the claiming-discipline test: with the
    // heavy chunk seeded to one worker's deque, the idle workers
    // drain its remaining chunks from the back, so the makespan drops
    // to the heavy chunk itself instead of a whole static partition.
    const int workers = 4;
    std::vector<double> costs(64, 1.0);
    for (std::size_t i = 0; i < 4; ++i)
        costs[i] = 40.0; // Heavy head (plan order is heaviest-first).

    std::vector<std::size_t> heavyFirst(costs.size());
    std::iota(heavyFirst.begin(), heavyFirst.end(), 0);
    std::vector<std::size_t> heavyLast(heavyFirst.rbegin(),
                                       heavyFirst.rend());

    const auto makespan = [](const std::vector<double> &loads) {
        return *std::max_element(loads.begin(), loads.end());
    };
    const double total = std::accumulate(costs.begin(), costs.end(), 0.0);

    // Static partitioning: grid order, one ceil(n/workers) block each.
    const std::size_t block =
        (costs.size() + std::size_t(workers) - 1) / std::size_t(workers);
    const std::vector<double> staticLoads =
        simulateWorkerLoads(costs, heavyLast, workers, block);

    const std::vector<double> stealing =
        simulateWorkerLoadsStealing(costs, heavyFirst, workers, 4);
    EXPECT_LT(makespan(stealing), makespan(staticLoads));

    // Heaviest-first seeding matters for stealing too: a heavy chunk
    // buried at the back of its owner's deque is claimed too late for
    // anyone to help with it.
    const std::vector<double> buried =
        simulateWorkerLoadsStealing(costs, heavyLast, workers, 4);
    EXPECT_LT(makespan(stealing), makespan(buried));

    // Every discipline executes all the work exactly once, at any
    // worker count and chunking grain.
    EXPECT_DOUBLE_EQ(
        std::accumulate(staticLoads.begin(), staticLoads.end(), 0.0),
        total);
    for (const int w : {1, 2, 4, 7}) {
        for (const std::size_t chunk : {std::size_t(1), std::size_t(3),
                                        std::size_t(16), block}) {
            const std::vector<double> loads =
                simulateWorkerLoadsStealing(costs, heavyFirst, w, chunk);
            EXPECT_DOUBLE_EQ(
                std::accumulate(loads.begin(), loads.end(), 0.0), total)
                << "workers " << w << " chunk " << chunk;
        }
    }

    // One worker degenerates to the serial sum.
    const std::vector<double> solo =
        simulateWorkerLoadsStealing(costs, heavyFirst, 1, 4);
    ASSERT_EQ(solo.size(), 1u);
    EXPECT_DOUBLE_EQ(solo[0], total);
}

TEST(SuiteRunner, WorkerPerfCountsEveryJobOnce)
{
    const std::vector<SuiteLoop> suite = testSuite(8);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    // Perf counts every dispatched work item: the grid's jobs plus
    // the chunk planner's per-distinct-loop bounds prefetch.
    const long expected = long(jobs.size()) + long(suite.size());

    SuiteRunner pooled(4);
    (void)pooled.run(suite, m, jobs);
    long jobsSeen = 0, claims = 0;
    double schedule = 0;
    for (const WorkerPerf &w : pooled.workerPerf()) {
        jobsSeen += w.jobs;
        claims += w.claims;
        schedule += w.scheduleSeconds;
        EXPECT_GE(w.memoWaitSeconds, 0.0);
        EXPECT_GE(w.stealSeconds, 0.0);
    }
    EXPECT_EQ(jobsSeen, expected);
    EXPECT_GE(claims, 1);
    EXPECT_GT(schedule, 0.0);

    pooled.resetWorkerPerf();
    for (const WorkerPerf &w : pooled.workerPerf()) {
        EXPECT_EQ(w.jobs, 0);
        EXPECT_EQ(w.claims, 0);
        EXPECT_EQ(w.scheduleSeconds, 0.0);
    }

    // The serial path accounts on worker slot 0.
    SuiteRunner serial(1);
    (void)serial.run(suite, m, jobs);
    const std::vector<WorkerPerf> sp = serial.workerPerf();
    ASSERT_EQ(sp.size(), 1u);
    EXPECT_EQ(sp[0].jobs, expected);
    EXPECT_EQ(sp[0].steals, 0);
}

TEST(SuiteRunner, ParseThreadsArgAcceptsAutoAndChecksRange)
{
    int out = -1;
    EXPECT_TRUE(parseThreadsArg("auto", out));
    EXPECT_EQ(out, 0); // 0 resolves to hardware_concurrency.
    EXPECT_TRUE(parseThreadsArg("0", out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(parseThreadsArg("8", out));
    EXPECT_EQ(out, 8);
    out = 99;
    EXPECT_FALSE(parseThreadsArg("", out));
    EXPECT_FALSE(parseThreadsArg("eight", out));
    EXPECT_FALSE(parseThreadsArg("-1", out));
    EXPECT_FALSE(parseThreadsArg("8x", out));
    EXPECT_FALSE(parseThreadsArg("1000000", out));
    EXPECT_EQ(out, 99); // Failed parses leave the value untouched.
}

TEST(SuiteRunner, ResultsReferenceSuiteGraphsUnlessTransformed)
{
    // The lean PipelineResult must not copy the input Ddg: an untouched
    // loop's result points straight into the suite.
    const std::vector<SuiteLoop> suite = testSuite(6);
    const Machine m = Machine::p2l4();
    std::vector<BatchJob> jobs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        BatchJob job;
        job.loop = int(i);
        job.ideal = true;
        jobs.push_back(job);
    }
    SuiteRunner runner(2);
    const auto results = runner.run(suite, m, jobs);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_FALSE(results[i].ownsGraph()) << i;
        EXPECT_EQ(&results[i].graph(), &suite[i].graph) << i;
    }
}

} // namespace
} // namespace swp
