/**
 * @file
 * Batch driver tests: deterministic results at any thread count on the
 * pinned-seed suite, the MII/RecMII memo, and the parallel-for
 * primitive.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "driver/suite_runner.hh"
#include "sched/mii.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

/** A small pinned-seed suite plus a mixed job grid over it. */
std::vector<SuiteLoop>
testSuite(int loops)
{
    SuiteParams params;  // Pinned default seed.
    params.numLoops = loops;
    return generateSuite(params);
}

std::vector<BatchJob>
mixedGrid(std::size_t loops)
{
    std::vector<BatchJob> jobs;
    for (std::size_t i = 0; i < loops; ++i) {
        BatchJob spill;
        spill.loop = int(i);
        spill.strategy = Strategy::Spill;
        spill.options.registers = 32;
        spill.options.multiSelect = true;
        spill.options.reuseLastIi = true;
        jobs.push_back(spill);

        BatchJob incr;
        incr.loop = int(i);
        incr.strategy = Strategy::IncreaseII;
        incr.options.registers = 32;
        jobs.push_back(incr);

        BatchJob ideal;
        ideal.loop = int(i);
        ideal.ideal = true;
        jobs.push_back(ideal);
    }
    return jobs;
}

void
expectIdenticalResults(const PipelineResult &a, const PipelineResult &b,
                       std::size_t job)
{
    EXPECT_EQ(a.success, b.success) << "job " << job;
    EXPECT_EQ(a.usedFallback, b.usedFallback) << "job " << job;
    EXPECT_EQ(a.mii, b.mii) << "job " << job;
    EXPECT_EQ(a.rounds, b.rounds) << "job " << job;
    EXPECT_EQ(a.attempts, b.attempts) << "job " << job;
    EXPECT_EQ(a.spilledLifetimes, b.spilledLifetimes) << "job " << job;
    EXPECT_EQ(a.strategy, b.strategy) << "job " << job;
    EXPECT_EQ(a.ii(), b.ii()) << "job " << job;
    EXPECT_EQ(a.alloc.regsRequired, b.alloc.regsRequired)
        << "job " << job;
    EXPECT_EQ(a.alloc.maxLive, b.alloc.maxLive) << "job " << job;
    EXPECT_EQ(a.memOpsPerIteration(), b.memOpsPerIteration())
        << "job " << job;
    ASSERT_EQ(a.graph().numNodes(), b.graph().numNodes())
        << "job " << job;
    for (NodeId n = 0; n < a.graph().numNodes(); ++n) {
        EXPECT_EQ(a.sched.time(n), b.sched.time(n))
            << "job " << job << " node " << n;
        EXPECT_EQ(a.sched.unit(n), b.sched.unit(n))
            << "job " << job << " node " << n;
    }
}

TEST(SuiteRunner, ResultsIdenticalAtOneAndManyThreads)
{
    const std::vector<SuiteLoop> suite = testSuite(40);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner serial(1);
    SuiteRunner pooled(4);
    const auto a = serial.run(suite, m, jobs);
    const auto b = pooled.run(suite, m, jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdenticalResults(a[i], b[i], i);

    // The harnesses' accumulated floating-point totals must also match
    // bit-for-bit: same values reduced in the same (index) order.
    double cyclesA = 0, cyclesB = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const long w = suite[std::size_t(jobs[i].loop)].iterations;
        cyclesA += double(a[i].ii()) * double(w);
        cyclesB += double(b[i].ii()) * double(w);
    }
    EXPECT_EQ(cyclesA, cyclesB);
}

TEST(SuiteRunner, RepeatedRunsAreIdentical)
{
    // The MII memo and scheduler reuse must not make a second pass over
    // the same grid diverge from the first.
    const std::vector<SuiteLoop> suite = testSuite(12);
    const Machine m = Machine::p1l4();
    const std::vector<BatchJob> jobs = mixedGrid(suite.size());

    SuiteRunner runner(3);
    const auto first = runner.run(suite, m, jobs);
    const auto second = runner.run(suite, m, jobs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdenticalResults(first[i], second[i], i);
}

TEST(SuiteRunner, BoundsMatchDirectComputation)
{
    const std::vector<SuiteLoop> suite = testSuite(8);
    SuiteRunner runner(2);
    for (const Machine &m : {Machine::p1l4(), Machine::p2l6()}) {
        for (const SuiteLoop &loop : suite) {
            const SuiteRunner::LoopBounds b = runner.bounds(loop.graph, m);
            EXPECT_EQ(b.mii, mii(loop.graph, m)) << loop.graph.name();
            EXPECT_EQ(b.recMii, recMii(loop.graph, m))
                << loop.graph.name();
            // Second lookup hits the memo and must agree.
            const SuiteRunner::LoopBounds again =
                runner.bounds(loop.graph, m);
            EXPECT_EQ(again.mii, b.mii);
            EXPECT_EQ(again.recMii, b.recMii);
        }
    }
}

TEST(SuiteRunner, BoundsDistinguishSameNamedMachines)
{
    // The memo key must reflect the machine's configuration, not just
    // its (non-unique) name.
    const std::vector<SuiteLoop> suite = testSuite(1);
    const Ddg &g = suite[0].graph;
    const Machine wide = Machine::universal("m", 8, 2);
    const Machine narrow = Machine::universal("m", 1, 2);
    SuiteRunner runner(1);
    EXPECT_EQ(runner.bounds(g, wide).mii, mii(g, wide));
    EXPECT_EQ(runner.bounds(g, narrow).mii, mii(g, narrow));
    EXPECT_GT(runner.bounds(g, narrow).mii, runner.bounds(g, wide).mii);
}

TEST(SuiteRunner, ParallelForCoversEveryIndexOnce)
{
    SuiteRunner runner(8);
    std::vector<int> hits(1000, 0);
    runner.parallelFor(hits.size(),
                       [&](std::size_t i) { hits[i] += int(i) + 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], int(i) + 1) << i;
}

TEST(SuiteRunner, ExceptionsPropagateToTheCaller)
{
    SuiteRunner runner(4);
    EXPECT_THROW(runner.parallelFor(64,
                                    [](std::size_t i) {
                                        if (i == 17)
                                            throw std::runtime_error("x");
                                    }),
                 std::runtime_error);
}

TEST(SuiteRunner, ZeroThreadsSelectsHardwareConcurrency)
{
    SuiteRunner runner(0);
    EXPECT_GE(runner.threads(), 1);
}

TEST(SuiteRunner, ResultsReferenceSuiteGraphsUnlessTransformed)
{
    // The lean PipelineResult must not copy the input Ddg: an untouched
    // loop's result points straight into the suite.
    const std::vector<SuiteLoop> suite = testSuite(6);
    const Machine m = Machine::p2l4();
    std::vector<BatchJob> jobs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        BatchJob job;
        job.loop = int(i);
        job.ideal = true;
        jobs.push_back(job);
    }
    SuiteRunner runner(2);
    const auto results = runner.run(suite, m, jobs);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_FALSE(results[i].ownsGraph()) << i;
        EXPECT_EQ(&results[i].graph(), &suite[i].graph) << i;
    }
}

} // namespace
} // namespace swp
