/**
 * @file
 * Use-granularity spilling tests (the Section 6 extension): candidate
 * enumeration, the rewrite, interaction with value spilling, and
 * end-to-end correctness.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/verify.hh"
#include "pipeliner/pipeliner.hh"
#include "sim/vliw.hh"
#include "spill/insert.hh"
#include "workload/paper_loops.hh"

namespace swp
{
namespace
{

/** ld feeds an early add and a much later mul (distance 4). */
Ddg
twoUseLoop()
{
    DdgBuilder b("twouse");
    const NodeId ld = b.load("ld");
    const NodeId early = b.add("early");
    b.flow(ld, early);
    const NodeId late = b.mul("late");
    b.flow(ld, late, 4);
    const NodeId st1 = b.store("st1");
    b.flow(early, st1);
    const NodeId st2 = b.store("st2");
    b.flow(late, st2);
    return b.take();
}

Schedule
twoUseSchedule(int ii)
{
    Schedule s(ii, 5);
    s.set(0, 0, 0);   // ld
    s.set(1, 2, 0);   // early
    s.set(2, 3, 0);   // late (plus 4 iterations of distance)
    s.set(3, 6, 1);   // st1
    s.set(4, 7, 1);   // st2
    return s;
}

TEST(SpillUses, CandidateTargetsTheCriticalUse)
{
    const Ddg g = twoUseLoop();
    const LifetimeInfo info = analyzeLifetimes(g, twoUseSchedule(3));
    // ld: end = 3 + 4*3 = 15, secondEnd = 2 => savings 13.
    EXPECT_EQ(info.of(0).end, 15);
    EXPECT_EQ(info.of(0).secondEnd, 2);

    const auto withUses = spillCandidates(g, info, /*include_uses=*/true);
    const auto withoutUses = spillCandidates(g, info, false);
    EXPECT_EQ(withUses.size(), withoutUses.size() + 1);

    const SpillCandidate *useCand = nullptr;
    for (const auto &c : withUses) {
        if (c.useEdge >= 0)
            useCand = &c;
    }
    ASSERT_NE(useCand, nullptr);
    EXPECT_EQ(useCand->node, 0);
    EXPECT_EQ(useCand->lifetime, 13);
    EXPECT_EQ(useCand->cost, 1);  // Producer is a load: one reload.
    EXPECT_EQ(g.edge(useCand->useEdge).dst, 2);
}

TEST(SpillUses, RewriteKeepsTheOtherUseInRegisters)
{
    Ddg g = twoUseLoop();
    const LifetimeInfo info = analyzeLifetimes(g, twoUseSchedule(3));
    const auto cands = spillCandidates(g, info, true);
    const SpillCandidate *useCand = nullptr;
    for (const auto &c : cands) {
        if (c.useEdge >= 0)
            useCand = &c;
    }
    ASSERT_NE(useCand, nullptr);

    const Machine m = Machine::p2l4();
    const SpillEdit edit = insertSpill(g, m, *useCand);
    EXPECT_EQ(edit.loadsAdded, 1);
    EXPECT_EQ(edit.storesAdded, 0);  // Producer is a load.

    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;
    // The early use still reads the register copy.
    EXPECT_EQ(g.numValueUses(0), 1);
    EXPECT_EQ(g.edge(g.valueUses(0)[0]).dst, 1);
    // ld stays spillable at value granularity (it is a load).
    EXPECT_FALSE(g.node(0).nonSpillableValue);
    // The reload carries the distance as its stream shift.
    const NodeId ls = g.numNodes() - 1;
    EXPECT_EQ(g.node(ls).spillRef.kind, SpillRef::Kind::ReloadStream);
    EXPECT_EQ(g.node(ls).spillRef.shift, 4);
}

TEST(SpillUses, NonLoadProducerParksTheValueOnce)
{
    // A computed value with three uses, two of them late: the first
    // use-spill adds the store, the second reuses it.
    DdgBuilder b("parked");
    const NodeId ld = b.load("ld");
    const NodeId v = b.mul("v");
    b.flow(ld, v);
    const NodeId u1 = b.add("u1");
    b.flow(v, u1);
    const NodeId u2 = b.add("u2");
    b.flow(v, u2, 3);
    const NodeId u3 = b.add("u3");
    b.flow(v, u3, 5);
    for (NodeId u : {u1, u2, u3}) {
        const NodeId st = b.store();
        b.flow(u, st);
    }
    Ddg g = b.take();
    const Machine m = Machine::p2l4();

    Schedule s(2, g.numNodes());
    int t = 0;
    for (NodeId n = 0; n < g.numNodes(); ++n)
        s.set(n, t += 4, 0);
    // Build lifetimes directly from the graph + schedule.
    const LifetimeInfo info = analyzeLifetimes(g, s);

    auto cands = spillCandidates(g, info, true);
    const SpillCandidate *useCand = nullptr;
    for (const auto &c : cands) {
        if (c.useEdge >= 0 && c.node == v)
            useCand = &c;
    }
    ASSERT_NE(useCand, nullptr);
    EXPECT_EQ(useCand->cost, 2);  // Store + load the first time.
    const SpillEdit first = insertSpill(g, m, *useCand);
    EXPECT_EQ(first.storesAdded, 1);
    EXPECT_TRUE(g.node(v).nonSpillableValue);
    ASSERT_NE(existingSpillStore(g, v), invalidNode);

    // Second round: the u2 use is now the critical one; its candidate
    // must reuse the parked copy (cost 1) even though v is marked.
    // (The graph grew by the spill store and reload; extend the
    // schedule with plausible times before re-analyzing.)
    const int oldNodes = s.numNodes();
    Schedule s2(2, g.numNodes());
    for (NodeId n = 0; n < oldNodes; ++n)
        s2.set(n, s.time(n), s.unit(n));
    for (NodeId n = oldNodes; n < g.numNodes(); ++n)
        s2.set(n, s.time(v) + 4 * (n - oldNodes + 1), 1);
    const LifetimeInfo info2 = analyzeLifetimes(g, s2);
    auto cands2 = spillCandidates(g, info2, true);
    const SpillCandidate *useCand2 = nullptr;
    for (const auto &c : cands2) {
        if (c.useEdge >= 0 && c.node == v)
            useCand2 = &c;
    }
    ASSERT_NE(useCand2, nullptr);
    EXPECT_EQ(useCand2->cost, 1);
    const SpillEdit second = insertSpill(g, m, *useCand2);
    EXPECT_EQ(second.storesAdded, 0);
    EXPECT_EQ(second.loadsAdded, 1);
    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;
}

TEST(SpillUses, PipelineWithUseGranularityIsSoundAndCorrect)
{
    const Machine m = Machine::p2l4();
    for (const Ddg &g :
         {buildApsi47Analogue(), buildApsi50Analogue(), twoUseLoop()}) {
        PipelinerOptions opts;
        opts.registers = 24;
        opts.multiSelect = true;
        opts.reuseLastIi = true;
        opts.spillUses = true;
        const PipelineResult r = pipelineLoop(g, m, Strategy::Spill,
                                              opts);
        ASSERT_TRUE(r.success) << g.name();
        std::string why;
        ASSERT_TRUE(validateSchedule(r.graph(), m, r.sched, &why))
            << g.name() << ": " << why;
        ASSERT_TRUE(equivalentToSequential(g, r.graph(), m, r.sched,
                                           r.alloc.rotAlloc, 16, &why))
            << g.name() << ": " << why;
    }
}

TEST(SpillUses, HelpsApsi47SharedVector)
{
    // apsi47's loads have two consumers each, far apart: exactly the
    // shape use-spilling targets. It should converge with no more
    // spill operations than value spilling.
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions value;
    value.registers = 32;
    PipelinerOptions uses = value;
    uses.spillUses = true;

    const PipelineResult rv = pipelineLoop(g, m, Strategy::Spill, value);
    const PipelineResult ru = pipelineLoop(g, m, Strategy::Spill, uses);
    ASSERT_TRUE(rv.success);
    ASSERT_TRUE(ru.success);
    EXPECT_LE(ru.memOpsPerIteration(), rv.memOpsPerIteration());
    EXPECT_LE(ru.ii(), rv.ii() + 1);
}

} // namespace
} // namespace swp
