/**
 * @file
 * Tests for the optimality-certificate subsystem (src/verify/certify).
 *
 * Four halves:
 *  - positive: real pipeline results — the paper example, pinned suite
 *    loops (spilled and unspilled, all strategies), universal machines
 *    — must produce certificates that pass the independent checker and
 *    never contradict the achieved II/register count;
 *  - differential: the certificate bounds, derived with code sharing
 *    nothing with src/sched, must equal the scheduler's own
 *    recMii/resMii/mii on every pinned loop x machine pair;
 *  - negative (mutation): perturb exactly one site of a valid bundle —
 *    a cycle edge, a tally, a lifetime floor, the claimed bound — and
 *    the checker must reject the mutant with a diagnostic of the
 *    matching CertKind;
 *  - integration: SuiteRunner fills the per-job summary vector
 *    identically at any thread count, sharded-out slots stay invalid,
 *    and the JSON rendering is byte-stable.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/mii.hh"
#include "verify/certify.hh"
#include "verify/mutate.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

#include "driver/suite_runner.hh"

namespace swp
{
namespace
{

PipelinerOptions
spillOptions(int registers)
{
    PipelinerOptions opts;
    opts.registers = registers;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    return opts;
}

/** Certify one finished result against its own (possibly transformed)
    graph and cross-check it; returns the bundle for further poking. */
Certificate
certifyAndExpectClean(const Machine &m, const PipelineResult &r,
                      const std::string &label)
{
    const Ddg &g = r.graph();
    const Certificate cert = certifyLoop(g, m, r.sched.ii());
    const CertReport check = checkCertificate(g, m, cert);
    EXPECT_TRUE(check.ok()) << label << ":\n" << check.describe();
    const CertReport contra = checkCertificateAgainstResult(cert, r);
    EXPECT_TRUE(contra.ok()) << label << ":\n" << contra.describe();
    return cert;
}

/** First pinned suite loop whose recurrences actually bind (recMii >=
    2) on p2l4 — the critical-cycle donor. The paper example is acyclic
    at the recurrence level, so it cannot exercise cycle extraction. */
SuiteLoop
recurrenceLoop()
{
    const SuiteParams params;
    const Machine m = Machine::p2l4();
    for (int i = 0;; ++i) {
        SuiteLoop loop = generateSuiteLoop(params, i);
        if (recMii(loop.graph, m) >= 2)
            return loop;
    }
}

TEST(Certify, PaperExampleCertifiesClean)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::p2l4();
    const PipelineResult r = pipelineIdeal(g, m);
    const Certificate cert = certifyAndExpectClean(m, r, "paper example");
    EXPECT_EQ(cert.iiBound,
              std::max(cert.cycle.bound, cert.resource.bound));
}

TEST(Certify, CriticalCycleIsAClosedLiveWalk)
{
    const SuiteLoop loop = recurrenceLoop();
    const Machine m = Machine::p2l4();
    const PipelineResult r = pipelineIdeal(loop.graph, m);
    const Certificate cert =
        certifyAndExpectClean(m, r, "recurrence donor");

    EXPECT_GE(cert.cycle.bound, 2);
    ASSERT_FALSE(cert.cycle.edges.empty());
    const Ddg &g = r.graph();
    for (std::size_t i = 0; i < cert.cycle.edges.size(); ++i) {
        const Edge &cur = g.edge(cert.cycle.edges[i]);
        const Edge &next =
            g.edge(cert.cycle.edges[(i + 1) % cert.cycle.edges.size()]);
        EXPECT_TRUE(cur.alive);
        EXPECT_EQ(cur.dst, next.src) << "walk broken at step " << i;
    }
    EXPECT_GE(cert.cycle.distanceSum, 1);
}

TEST(Certify, PinnedSuiteSweepCertifiesClean)
{
    const SuiteParams params;  // Pinned default seed.
    const Machine m = Machine::p2l4();
    for (int i = 0; i < 60; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        for (const Strategy strategy :
             {Strategy::Spill, Strategy::IncreaseII,
              Strategy::BestOfAll}) {
            const PipelineResult r =
                pipelineLoop(loop.graph, m, strategy, spillOptions(16));
            certifyAndExpectClean(
                m, r,
                "loop " + std::to_string(i) + " strategy " +
                    std::to_string(int(strategy)));
        }
    }
}

TEST(Certify, SpilledResultsCertifyAgainstTransformedGraph)
{
    // A tight budget forces spilling: the certificate is generated and
    // checked against the spill-transformed graph, whose extra nodes
    // and fused edges must not break any bound.
    const SuiteParams params;
    const Machine m = Machine::p1l4();
    int spilled = 0;
    for (int i = 0; i < 40; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        const PipelineResult r =
            pipelineLoop(loop.graph, m, Strategy::Spill, spillOptions(8));
        spilled += r.spilledLifetimes > 0;
        certifyAndExpectClean(m, r, "loop " + std::to_string(i));
    }
    EXPECT_GT(spilled, 0) << "budget 8 on p1l4 spilled nothing; the "
                             "spill path went untested";
}

TEST(Certify, UniversalMachineUsesOnePool)
{
    // Universal machines seat every op on one unit pool: the resource
    // certificate collapses to one tally for the single described class.
    const SuiteParams params;
    const Machine m = Machine::universal("u4", 4, 2);
    for (int i = 0; i < 20; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        const PipelineResult r = pipelineIdeal(loop.graph, m);
        const Certificate cert =
            certifyAndExpectClean(m, r, "loop " + std::to_string(i));
        ASSERT_EQ(cert.resource.tallies.size(), 1u);
        EXPECT_EQ(cert.resource.tallies[0].fuClass, 0);
        EXPECT_EQ(cert.resource.tallies[0].units, 4);
    }
}

// ---------------------------------------------------------------------------
// Differential: the independent bounds equal the scheduler's own.
// ---------------------------------------------------------------------------

TEST(Certify, BoundsMatchSchedulerMii)
{
    const SuiteParams params;
    const std::vector<Machine> machines = {
        Machine::p1l4(), Machine::p2l4(), Machine::p2l6(),
        Machine::universal("u4", 4, 2)};
    for (int i = 0; i < 60; ++i) {
        const SuiteLoop loop = generateSuiteLoop(params, i);
        for (const Machine &m : machines) {
            const int iiRef = mii(loop.graph, m);
            const Certificate cert = certifyLoop(loop.graph, m, iiRef);
            EXPECT_EQ(cert.cycle.bound, recMii(loop.graph, m))
                << "loop " << i << " machine " << m.name();
            EXPECT_EQ(cert.resource.bound, resMii(loop.graph, m))
                << "loop " << i << " machine " << m.name();
            EXPECT_EQ(cert.iiBound, iiRef)
                << "loop " << i << " machine " << m.name();
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation classes. Each must be caught with the matching kind.
// ---------------------------------------------------------------------------

/** A certified recurrence-bearing result, the mutation donor (its
    certificate populates all three sections, cycle included). */
struct Donor
{
    Ddg g;
    Machine m;
    PipelineResult result;
    Certificate cert;

    Donor()
        : g(recurrenceLoop().graph), m(Machine::p2l4()),
          result(pipelineIdeal(g, m)),
          cert(certifyLoop(result.graph(), m, result.sched.ii()))
    {
    }
};

TEST(CertifyMutation, CorruptedCycleEdgeCaught)
{
    const Donor d;
    ASSERT_FALSE(d.cert.cycle.edges.empty());
    // Swap the first cycle edge for any other edge of the graph: the
    // walk stops being closed (or its tally stops matching).
    const EdgeId original = d.cert.cycle.edges[0];
    EdgeId replacement = -1;
    for (EdgeId e = 0; e < d.g.numEdges(); ++e)
        if (e != original) {
            replacement = e;
            break;
        }
    ASSERT_NE(replacement, -1);

    const Certificate mutant = withCycleEdge(d.cert, 0, replacement);
    const CertReport report = checkCertificate(d.g, d.m, mutant);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(CertKind::Recurrence), 0)
        << report.describe();
}

TEST(CertifyMutation, InflatedTallyCaught)
{
    const Donor d;
    ASSERT_FALSE(d.cert.resource.tallies.empty());
    const long occ = d.cert.resource.tallies[0].occupancy;
    const Certificate mutant = withTallyOccupancy(d.cert, 0, occ + 1);
    const CertReport report = checkCertificate(d.g, d.m, mutant);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(CertKind::Resource), 0) << report.describe();
}

TEST(CertifyMutation, InflatedLifetimeFloorCaught)
{
    const Donor d;
    ASSERT_FALSE(d.cert.registers.terms.empty());
    const int lt = d.cert.registers.terms[0].minLifetime;
    const Certificate mutant = withTermLifetime(d.cert, 0, lt + 1);
    const CertReport report = checkCertificate(d.g, d.m, mutant);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(CertKind::RegisterFloor), 0)
        << report.describe();
}

TEST(CertifyMutation, RaisedRegisterBoundCaught)
{
    const Donor d;
    const Certificate mutant =
        withRegisterBound(d.cert, d.cert.registers.bound + 1);
    const CertReport report = checkCertificate(d.g, d.m, mutant);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(CertKind::RegisterFloor), 0)
        << report.describe();
}

TEST(CertifyMutation, RaisedIiBoundCaught)
{
    const Donor d;
    const Certificate mutant = withIiBound(d.cert, d.cert.iiBound + 1);
    const CertReport report = checkCertificate(d.g, d.m, mutant);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(CertKind::Consistency), 0)
        << report.describe();
}

TEST(CertifyMutation, ContradictionWithResultCaught)
{
    // A bound above the achieved II claims the schedule is impossible:
    // the result cross-check must flag the contradiction even though
    // checkCertificate cannot (it only sees the graph).
    const Donor d;
    const Certificate mutant =
        withIiBound(d.cert, d.result.sched.ii() + 1);
    const CertReport report =
        checkCertificateAgainstResult(mutant, d.result);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.count(CertKind::Consistency), 0)
        << report.describe();
}

// ---------------------------------------------------------------------------
// SuiteRunner integration and reporting.
// ---------------------------------------------------------------------------

std::vector<SuiteLoop>
smallSuite(int n)
{
    const SuiteParams params;
    std::vector<SuiteLoop> suite;
    suite.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        suite.push_back(generateSuiteLoop(params, i));
    return suite;
}

std::vector<BatchJob>
suiteJobs(int n)
{
    std::vector<BatchJob> jobs;
    for (int i = 0; i < n; ++i) {
        BatchJob job;
        job.loop = i;
        job.strategy = Strategy::BestOfAll;
        job.options = spillOptions(16);
        jobs.push_back(job);
    }
    return jobs;
}

std::vector<std::string>
runCertified(int threads, int n, const ShardSpec &shard = ShardSpec{})
{
    const std::vector<SuiteLoop> suite = smallSuite(n);
    const Machine m = Machine::p2l4();
    SuiteRunner runner(threads);
    RunOptions opts;
    opts.shard = shard;
    std::vector<CertSummary> certs;
    opts.certificates = &certs;
    runner.run(suite, m, suiteJobs(n), opts);
    EXPECT_EQ(certs.size(), std::size_t(n));
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < certs.size(); ++i)
        lines.push_back(certs[i].valid
                            ? certSummaryJson(int(i), certs[i])
                            : std::string());
    return lines;
}

TEST(CertifySuiteRunner, SummariesIdenticalAcrossThreadCounts)
{
    const std::vector<std::string> one = runCertified(1, 24);
    const std::vector<std::string> four = runCertified(4, 24);
    EXPECT_EQ(one, four);
    for (const std::string &line : one)
        EXPECT_FALSE(line.empty());
}

TEST(CertifySuiteRunner, ShardedSlotsMatchUnshardedRun)
{
    const std::vector<std::string> full = runCertified(2, 24);
    ShardSpec shard;
    shard.index = 1;
    shard.count = 3;
    const std::vector<std::string> part = runCertified(2, 24, shard);
    for (std::size_t i = 0; i < part.size(); ++i) {
        if (shard.owns(i))
            EXPECT_EQ(part[i], full[i]) << "job " << i;
        else
            EXPECT_TRUE(part[i].empty()) << "job " << i;
    }
}

TEST(CertifyReport, GapAggregationCountsKinds)
{
    std::vector<CertSummary> summaries(5);
    summaries[0].valid = true;  // gap 0, regGap 0.
    summaries[0].achievedIi = summaries[0].iiBound = 3;
    summaries[0].achievedRegs = summaries[0].regBound = 7;
    summaries[1].valid = true;  // gap 1, regGap 1.
    summaries[1].achievedIi = 4;
    summaries[1].iiBound = 3;
    summaries[1].achievedRegs = 5;
    summaries[1].regBound = 4;
    summaries[2].valid = true;  // gap 2 (unproven), regGap 2.
    summaries[2].achievedIi = 5;
    summaries[2].iiBound = 3;
    summaries[2].achievedRegs = 6;
    summaries[2].regBound = 4;
    summaries[3].valid = false;  // Sharded out: skipped entirely.
    summaries[3].achievedIi = 100;
    summaries[4].valid = true;  // gap 0, regGap != 0.
    summaries[4].achievedIi = summaries[4].iiBound = 2;
    summaries[4].achievedRegs = 9;
    summaries[4].regBound = 8;

    const GapReport r = summarizeGaps(summaries);
    EXPECT_EQ(r.jobs, 4);
    EXPECT_EQ(r.optimal, 2);
    EXPECT_EQ(r.gapOne, 1);
    EXPECT_EQ(r.unproven, 1);
    EXPECT_EQ(r.gapSum, 3);
    EXPECT_EQ(r.regExact, 1);
    EXPECT_FALSE(describeGapReport(r).empty());
}

TEST(CertifyReport, JsonRenderingIsByteStable)
{
    CertSummary s;
    s.valid = true;
    s.loop = "loop0042";
    s.achievedIi = 7;
    s.achievedRegs = 19;
    s.recBound = 5;
    s.resBound = 7;
    s.iiBound = 7;
    s.regBound = 12;
    s.cycleEdges = 3;
    EXPECT_EQ(certSummaryJson(42, s),
              "{\"job\": 42, \"loop\": \"loop0042\", \"ii\": 7, "
              "\"regs\": 19, \"rec_bound\": 5, \"res_bound\": 7, "
              "\"ii_bound\": 7, \"reg_floor\": 12, \"cycle_edges\": 3, "
              "\"gap\": 0, \"reg_gap\": 7}");
}

} // namespace
} // namespace swp
