/**
 * @file
 * MVE allocation tests: name periods, coloring validity, and the
 * comparison against rotating-register allocation.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "regalloc/mvealloc.hh"
#include "regalloc/rotalloc.hh"
#include "sched/hrms.hh"
#include "sched/mii.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

Schedule
paperFlatSchedule(int ii)
{
    Schedule s(ii, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    return s;
}

TEST(MveAlloc, PaperExampleUnrollAndPeriods)
{
    const Ddg g = buildPaperExampleLoop();
    const LifetimeInfo info = analyzeLifetimes(g, paperFlatSchedule(2));
    ASSERT_EQ(mveUnrollFactor(info), 5);  // V1: ceil(10/2).

    const MveAllocResult r = allocateMve(info);
    EXPECT_EQ(r.unroll, 5);
    // V1 needs all 5 names; V2/V3 need 1 (their LT = 2 = II, and 1
    // divides 5).
    EXPECT_EQ(r.period[0], 5);
    EXPECT_EQ(r.period[1], 1);
    EXPECT_EQ(r.period[2], 1);
    EXPECT_EQ(r.period[3], 0);  // The store produces no value.
}

TEST(MveAlloc, RegisterCountAtLeastMaxLive)
{
    const Ddg g = buildPaperExampleLoop();
    for (int ii = 1; ii <= 3; ++ii) {
        const LifetimeInfo info =
            analyzeLifetimes(g, paperFlatSchedule(ii));
        const MveAllocResult r = allocateMve(info);
        // Any valid allocation needs at least MaxLive registers.
        EXPECT_GE(r.registers, info.maxLive) << "ii=" << ii;
    }
}

TEST(MveAlloc, PeriodDividesUnroll)
{
    SuiteParams params;
    params.numLoops = 20;
    const Machine m = Machine::p2l4();
    HrmsScheduler hrms;
    for (const SuiteLoop &loop : generateSuite(params)) {
        const auto s = hrms.scheduleAt(loop.graph, m, mii(loop.graph, m));
        if (!s)
            continue;
        const LifetimeInfo info = analyzeLifetimes(loop.graph, *s);
        const MveAllocResult r = allocateMve(info);
        for (NodeId n = 0; n < loop.graph.numNodes(); ++n) {
            const Lifetime &lt = info.of(n);
            if (!lt.live || lt.length() <= 0)
                continue;
            const int p = r.period[std::size_t(n)];
            ASSERT_GT(p, 0);
            EXPECT_EQ(r.unroll % p, 0) << loop.graph.name();
            EXPECT_GE(long(p) * info.ii, long(lt.length()))
                << loop.graph.name() << " node " << n;
        }
    }
}

TEST(MveAlloc, NeverBeatsRotatingByMoreThanNoise)
{
    // The rotating file can always emulate MVE naming, so the rotating
    // allocation should need at most as many registers (modulo the
    // greedy allocators' noise of a register or two).
    SuiteParams params;
    params.numLoops = 30;
    const Machine m = Machine::p2l4();
    HrmsScheduler hrms;
    long mveTotal = 0, rotTotal = 0;
    for (const SuiteLoop &loop : generateSuite(params)) {
        const auto s = hrms.scheduleAt(loop.graph, m, mii(loop.graph, m));
        if (!s)
            continue;
        const LifetimeInfo info = analyzeLifetimes(loop.graph, *s);
        mveTotal += allocateMve(info).registers;
        rotTotal += minRotatingRegs(info);
    }
    EXPECT_GE(mveTotal, rotTotal);
}

TEST(MveAlloc, EmptyAndDeadValues)
{
    DdgBuilder b("dead");
    const NodeId ld = b.load();
    const NodeId st = b.store();
    b.flow(ld, st);
    const NodeId dead = b.load("dead");
    (void)dead;
    const Ddg g = b.take();

    Schedule s(1, 3);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 0, 1);
    const LifetimeInfo info = analyzeLifetimes(g, s);
    const MveAllocResult r = allocateMve(info);
    EXPECT_EQ(r.period[std::size_t(dead)], 0);
    EXPECT_GE(r.registers, 2);  // ld's LT=2 at II=1 needs 2 names.
}

} // namespace
} // namespace swp
