/**
 * @file
 * Simulator tests: dataflow semantics, pipelined execution against the
 * sequential reference, live-in handling, and clobber detection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "sim/dataflow.hh"
#include "sim/vliw.hh"
#include "spill/insert.hh"
#include "workload/paper_loops.hh"

namespace swp
{
namespace
{

TEST(Dataflow, StreamsAreDeterministicAndDistinct)
{
    EXPECT_EQ(loadStreamValue(3, 7), loadStreamValue(3, 7));
    EXPECT_NE(loadStreamValue(3, 7), loadStreamValue(3, 8));
    EXPECT_NE(loadStreamValue(3, 7), loadStreamValue(4, 7));
    EXPECT_NE(invariantValue(0), invariantValue(1));
    EXPECT_NE(liveInValue(2, -1), liveInValue(2, -2));
}

TEST(Dataflow, OracleIsConsistentWithItself)
{
    const Ddg g = buildPaperExampleLoop();
    DataflowOracle a(g), b(g);
    for (long i = 0; i < 10; ++i) {
        EXPECT_EQ(a.value(2, i), b.value(2, i));
        EXPECT_EQ(a.value(3, i), b.value(3, i));
    }
}

TEST(Dataflow, CarriedUseReadsOlderInstance)
{
    const Ddg g = buildPaperExampleLoop();
    DataflowOracle oracle(g);
    // '+' at iteration 5 consumes Ld's value from iteration 2 (distance
    // 3) and '*'s value from iteration 5; recomputing by hand:
    std::vector<std::uint64_t> inputs = {oracle.value(0, 2),
                                         oracle.value(1, 5)};
    std::sort(inputs.begin(), inputs.end());
    EXPECT_EQ(oracle.value(2, 5), combineOperands(Opcode::Add, 2, inputs));
}

TEST(Dataflow, EarlyIterationsSeeLiveIns)
{
    const Ddg g = buildPaperExampleLoop();
    DataflowOracle oracle(g);
    // At iteration 0, '+' reads Ld's instance -3: defined, stable.
    const auto v1 = oracle.value(2, 0);
    const auto v2 = oracle.value(2, 0);
    EXPECT_EQ(v1, v2);
    // Loads have stream semantics for negative iterations.
    EXPECT_EQ(oracle.value(0, -3), loadStreamValue(0, -3));
}

TEST(Dataflow, ReferenceStreamsCoverOriginalStoresOnly)
{
    Ddg g = buildPaperExampleLoop();
    const auto streams = referenceStoreStreams(g, 8);
    ASSERT_EQ(streams.size(), 1u);
    EXPECT_EQ(streams.begin()->first, 3);
    EXPECT_EQ(streams.begin()->second.size(), 8u);
}

/** Pipeline a loop with a budget and check against the reference. */
void
expectEquivalent(const Ddg &g, const Machine &m, int budget,
                 Strategy strategy, long iterations = 24)
{
    PipelinerOptions opts;
    opts.registers = budget;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r = pipelineLoop(g, m, strategy, opts);
    ASSERT_TRUE(r.success) << g.name() << " budget=" << budget;
    std::string why;
    ASSERT_TRUE(equivalentToSequential(g, r.graph(), m, r.sched,
                                       r.alloc.rotAlloc, iterations, &why))
        << g.name() << " budget=" << budget << ": " << why;
}

TEST(Vliw, PaperExampleIdealExecutesCorrectly)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    const PipelineResult r = pipelineIdeal(g, m);
    std::string why;
    EXPECT_TRUE(equivalentToSequential(g, r.graph(), m, r.sched,
                                       r.alloc.rotAlloc, 32, &why))
        << why;
}

TEST(Vliw, PaperExampleSpilledExecutesCorrectly)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    expectEquivalent(g, m, 6, Strategy::Spill);
}

TEST(Vliw, Apsi47SpilledTo32ExecutesCorrectly)
{
    expectEquivalent(buildApsi47Analogue(), Machine::p2l4(), 32,
                     Strategy::Spill);
}

TEST(Vliw, Apsi50SpilledTo32ExecutesCorrectly)
{
    expectEquivalent(buildApsi50Analogue(), Machine::p2l4(), 32,
                     Strategy::Spill);
}

TEST(Vliw, IncreaseIiResultExecutesCorrectly)
{
    expectEquivalent(buildApsi47Analogue(), Machine::p2l4(), 40,
                     Strategy::IncreaseII);
}

TEST(Vliw, BestOfAllResultExecutesCorrectly)
{
    expectEquivalent(buildApsi47Analogue(), Machine::p2l4(), 32,
                     Strategy::BestOfAll);
}

TEST(Vliw, CountsMemoryTraffic)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    const PipelineResult r = pipelineIdeal(g, m);
    SimConfig cfg;
    cfg.iterations = 10;
    const SimResult sim =
        simulatePipelined(r.graph(), m, r.sched, r.alloc.rotAlloc, cfg);
    ASSERT_TRUE(sim.ok) << sim.error;
    EXPECT_EQ(sim.memoryOps, 20);  // 1 load + 1 store per iteration.
    EXPECT_GT(sim.cycles, 10);
}

TEST(Vliw, DetectsClobberFromBadAllocation)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    const PipelineResult r = pipelineIdeal(g, m);

    // Sabotage: give every value the same register offset.
    RotAllocResult bad = r.alloc.rotAlloc;
    for (auto &off : bad.offset) {
        if (off >= 0)
            off = 0;
    }
    bad.registers = 2;  // Far below MaxLive.
    SimConfig cfg;
    cfg.iterations = 16;
    const SimResult sim = simulatePipelined(r.graph(), m, r.sched, bad, cfg);
    EXPECT_FALSE(sim.ok);
    EXPECT_NE(sim.error.find("clobbered"), std::string::npos);
}

TEST(Vliw, EndToEndCatchesWrongStoreStream)
{
    // A deliberately wrong "transformed" graph: reload shifted by the
    // wrong distance. The equivalence check must fail.
    const Machine m = Machine::universal("fig2", 4, 2);
    Ddg g = buildPaperExampleLoop();
    Ddg bad = g;
    // Spill V1, then corrupt the reload shift.
    SpillCandidate cand;
    cand.node = 0;
    cand.lifetime = 7;
    cand.cost = 2;
    insertSpill(bad, m, cand);
    for (NodeId n = 4; n < bad.numNodes(); ++n) {
        if (bad.node(n).spillRef.shift == 3)
            bad.node(n).spillRef.shift = 2;  // Off-by-one iteration.
    }
    const PipelineResult r = pipelineIdeal(bad, m);
    std::string why;
    EXPECT_FALSE(equivalentToSequential(g, bad, m, r.sched,
                                        r.alloc.rotAlloc, 16, &why));
}

} // namespace
} // namespace swp
