/**
 * @file
 * MII computation tests: resource bound (including non-pipelined
 * occupancy) and recurrence bound via min-cycle-ratio.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ir/builder.hh"
#include "machine/machine.hh"
#include "sched/mii.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

/**
 * Reference RecMII: the pre-decomposition implementation — whole-graph
 * Bellman-Ford positive-cycle detection inside a binary search. The
 * per-SCC recMii must return exactly this on every graph.
 */
bool
refHasPositiveCycle(const Ddg &g, const Machine &m, int ii)
{
    const int n = g.numNodes();
    std::vector<long> dist(std::size_t(n), 0);
    for (int iter = 0; iter < n; ++iter) {
        bool changed = false;
        for (EdgeId e = 0; e < g.numEdges(); ++e) {
            const Edge &edge = g.edge(e);
            if (!edge.alive)
                continue;
            const long w =
                m.latency(g.node(edge.src).op) - long(ii) * edge.distance;
            if (dist[std::size_t(edge.src)] + w >
                dist[std::size_t(edge.dst)]) {
                dist[std::size_t(edge.dst)] =
                    dist[std::size_t(edge.src)] + w;
                changed = true;
            }
        }
        if (!changed)
            return false;
    }
    return true;
}

int
refRecMii(const Ddg &g, const Machine &m)
{
    long hi = 1;
    for (NodeId n = 0; n < g.numNodes(); ++n)
        hi += m.latency(g.node(n).op);
    if (!refHasPositiveCycle(g, m, 1))
        return 1;
    long lo = 1;  // infeasible
    while (lo + 1 < hi) {
        const long mid = lo + (hi - lo) / 2;
        if (refHasPositiveCycle(g, m, int(mid)))
            lo = mid;
        else
            hi = mid;
    }
    return int(hi);
}

TEST(ResMii, PaperExampleNeedsOneCycleOnFourUnits)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    // 4 ops on 4 universal units: one iteration per cycle.
    EXPECT_EQ(resMii(g, m), 1);
    EXPECT_EQ(mii(g, m), 1);
}

TEST(ResMii, MemoryBoundLoop)
{
    DdgBuilder b("membound");
    std::vector<NodeId> lds;
    for (int i = 0; i < 6; ++i)
        lds.push_back(b.load());
    NodeId acc = lds[0];
    for (int i = 1; i < 6; ++i) {
        const NodeId add = b.add();
        b.flow(acc, add);
        b.flow(lds[std::size_t(i)], add);
        acc = add;
    }
    const NodeId st = b.store();
    b.flow(acc, st);
    const Ddg g = b.take();

    // 7 memory ops on 1 unit vs 2 units.
    EXPECT_EQ(resMii(g, Machine::p1l4()), 7);
    EXPECT_EQ(resMii(g, Machine::p2l4()), 4);
}

TEST(ResMii, NonPipelinedDivideDominates)
{
    DdgBuilder b("div");
    const NodeId ld = b.load();
    const NodeId dv = b.div();
    const NodeId st = b.store();
    b.flow(ld, dv);
    b.flow(dv, st);
    const Ddg g = b.take();

    // One divide occupies its unit 17 cycles: II >= 17 whatever else.
    EXPECT_EQ(resMii(g, Machine::p2l4()), 17);
}

TEST(ResMii, TwoDividesOnOneUnit)
{
    DdgBuilder b("div2");
    const NodeId ld = b.load();
    const NodeId d1 = b.div();
    const NodeId d2 = b.div();
    const NodeId st = b.store();
    b.flow(ld, d1);
    b.flow(ld, d2);
    b.flow(d1, st);
    const NodeId st2 = b.store();
    b.flow(d2, st2);
    const Ddg g = b.take();

    EXPECT_EQ(resMii(g, Machine::p1l4()), 34);  // 2 x 17 on one unit.
    EXPECT_EQ(resMii(g, Machine::p2l4()), 17);  // One each.
}

TEST(RecMii, AcyclicLoopHasRecMiiOne)
{
    const Ddg g = buildPaperExampleLoop();
    // The only carried edge (Ld->+ at distance 3) closes no cycle.
    EXPECT_EQ(recMii(g, Machine::p2l4()), 1);
}

TEST(RecMii, SelfAccumulatorCeilsLatencyOverDistance)
{
    DdgBuilder b("acc");
    const NodeId add = b.add("acc");
    b.flow(add, add, 1);
    const NodeId st = b.store();
    b.flow(add, st);
    const Ddg g = b.take();

    // P2L4: add latency 4, distance 1 => RecMII 4.
    EXPECT_EQ(recMii(g, Machine::p2l4()), 4);
    // P2L6: latency 6.
    EXPECT_EQ(recMii(g, Machine::p2l6()), 6);
    // Distance 2 halves it (rounded up).
    DdgBuilder b2("acc2");
    const NodeId a2 = b2.add();
    b2.flow(a2, a2, 2);
    const NodeId st2 = b2.store();
    b2.flow(a2, st2);
    EXPECT_EQ(recMii(b2.take(), Machine::p2l6()), 3);
}

TEST(RecMii, MultiNodeCycle)
{
    DdgBuilder b("cyc");
    const NodeId a = b.add("a");
    const NodeId m = b.mul("m");
    b.flow(a, m);
    b.flow(m, a, 2);
    const NodeId st = b.store();
    b.flow(m, st);
    const Ddg g = b.take();

    // Cycle latency 4+4=8 over distance 2 => RecMII 4 on P2L4.
    EXPECT_EQ(recMii(g, Machine::p2l4()), 4);
    EXPECT_TRUE(iiFeasibleForRecurrences(g, Machine::p2l4(), 4));
    EXPECT_FALSE(iiFeasibleForRecurrences(g, Machine::p2l4(), 3));
}

TEST(RecMii, TightestOfSeveralCyclesWins)
{
    DdgBuilder b("two");
    const NodeId a = b.add("a");
    b.flow(a, a, 4);  // 4/4 = 1 per iteration.
    const NodeId m = b.mul("m");
    b.flow(m, m, 1);  // 4/1 = 4.
    const NodeId st = b.store();
    b.flow(a, st);
    const NodeId st2 = b.store();
    b.flow(m, st2);
    const Ddg g = b.take();
    EXPECT_EQ(recMii(g, Machine::p2l4()), 4);

    // Component-restricted RecMII separates them.
    EXPECT_EQ(recMiiOfComponent(g, Machine::p2l4(), {a}), 1);
    EXPECT_EQ(recMiiOfComponent(g, Machine::p2l4(), {m}), 4);
}

TEST(RecMii, PerSccMatchesWholeGraphReferenceOnSuite)
{
    // The per-SCC decomposition (with early exit and component-local
    // Bellman-Ford) must be an exact drop-in for the old whole-graph
    // binary search on the pinned-seed generated suite.
    SuiteParams params;
    params.numLoops = 80;
    const std::vector<SuiteLoop> suite = generateSuite(params);
    const Machine machines[] = {Machine::p1l4(), Machine::p2l4(),
                                Machine::p2l6()};
    for (const Machine &m : machines) {
        for (const SuiteLoop &loop : suite) {
            const int r = recMii(loop.graph, m);
            ASSERT_EQ(r, refRecMii(loop.graph, m))
                << loop.graph.name() << " on " << m.name();
            // Feasibility agrees with the bound on both sides.
            EXPECT_TRUE(iiFeasibleForRecurrences(loop.graph, m, r));
            if (r > 1) {
                EXPECT_FALSE(
                    iiFeasibleForRecurrences(loop.graph, m, r - 1));
            }
        }
    }
}

TEST(RecMii, CachedFeasibilityRebindsAcrossLoopsAndMachines)
{
    // The workspace-held RecurrenceCache keys its decomposition by the
    // (graph, machine) fingerprints: alternating queries over different
    // loops and machines must answer exactly like the uncached call.
    SuiteParams params;
    params.numLoops = 10;
    const std::vector<SuiteLoop> suite = generateSuite(params);
    const Machine machines[] = {Machine::p1l4(), Machine::p2l6()};
    RecurrenceCache cache;
    for (int round = 0; round < 2; ++round) {
        for (const SuiteLoop &loop : suite) {
            for (const Machine &m : machines) {
                const int r = recMii(loop.graph, m);
                for (int ii = std::max(1, r - 2); ii <= r + 1; ++ii) {
                    EXPECT_EQ(
                        iiFeasibleForRecurrences(loop.graph, m, ii, cache),
                        iiFeasibleForRecurrences(loop.graph, m, ii))
                        << loop.graph.name() << " on " << m.name()
                        << " ii=" << ii;
                }
            }
        }
    }
}

TEST(Mii, TakesTheMaxOfBothBounds)
{
    DdgBuilder b("both");
    std::vector<NodeId> lds;
    for (int i = 0; i < 8; ++i)
        lds.push_back(b.load());
    const NodeId acc = b.add("acc");
    b.flow(lds[0], acc);
    b.flow(acc, acc, 1);
    const NodeId st = b.store();
    b.flow(acc, st);
    for (int i = 1; i < 8; ++i) {
        const NodeId s = b.store();
        b.flow(lds[std::size_t(i)], s);
    }
    const Ddg g = b.take();

    const Machine m = Machine::p2l4();
    EXPECT_EQ(resMii(g, m), 8);  // 16 mem ops over 2 units.
    EXPECT_EQ(recMii(g, m), 4);
    EXPECT_EQ(mii(g, m), 8);
}

} // namespace
} // namespace swp
