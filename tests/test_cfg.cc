/**
 * @file
 * IF-conversion tests: select insertion, nesting, loop-carried uses of
 * merged values, store handling, error cases, and end-to-end
 * pipelining of converted loops.
 */

#include <gtest/gtest.h>

#include "ir/cfg.hh"
#include "ir/verify.hh"
#include "pipeliner/pipeliner.hh"
#include "sim/vliw.hh"
#include "support/diag.hh"

namespace swp
{
namespace
{

/**
 *   x   = ld
 *   c   = ld
 *   if (c) { y = x * g } else { y = x + x }
 *   st(y)
 */
CfgLoop
diamondLoop()
{
    CfgLoop loop;
    loop.name = "diamond";
    loop.invariants = {"g"};
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "x", {}));
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "c", {}));
    loop.body.push_back(CfgStmt::makeIf(
        CfgOperand::value("c"),
        {CfgStmt::makeOp(Opcode::Mul, "y",
                         {CfgOperand::value("x"), CfgOperand::inv("g")})},
        {CfgStmt::makeOp(Opcode::Add, "y",
                         {CfgOperand::value("x"),
                          CfgOperand::value("x")})}));
    loop.body.push_back(
        CfgStmt::makeOp(Opcode::Store, "", {CfgOperand::value("y")}));
    return loop;
}

TEST(IfConvert, DiamondBecomesSelect)
{
    const CfgLoop loop = diamondLoop();
    EXPECT_EQ(countSelects(loop), 1);

    const Ddg g = ifConvert(loop);
    std::string why;
    ASSERT_TRUE(verifyDdg(g, &why)) << why;

    // x, c, mul, add, select, store.
    EXPECT_EQ(g.numNodes(), 6);
    int selects = 0;
    NodeId sel = invalidNode;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (g.node(n).op == Opcode::Select) {
            ++selects;
            sel = n;
        }
    }
    ASSERT_EQ(selects, 1);
    // The select reads the condition and both versions: 3 inputs.
    EXPECT_EQ(g.inEdges(sel).size(), 3u);
    // The store consumes the select, not either branch value.
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (g.node(n).op == Opcode::Store) {
            EXPECT_EQ(g.edge(g.inEdges(n)[0]).src, sel);
        }
    }
}

TEST(IfConvert, OneSidedUpdateMergesWithPriorValue)
{
    //   acc = add(ld)          -- prior value
    //   if (c) { acc = add(acc, ld2) }
    //   st(acc)
    CfgLoop loop;
    loop.name = "onesided";
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "ld", {}));
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "c", {}));
    loop.body.push_back(CfgStmt::makeOp(Opcode::Add, "acc",
                                        {CfgOperand::value("ld")}));
    loop.body.push_back(CfgStmt::makeIf(
        CfgOperand::value("c"),
        {CfgStmt::makeOp(Opcode::Add, "acc",
                         {CfgOperand::value("acc"),
                          CfgOperand::value("ld")})},
        {}));
    loop.body.push_back(
        CfgStmt::makeOp(Opcode::Store, "", {CfgOperand::value("acc")}));

    EXPECT_EQ(countSelects(loop), 1);
    const Ddg g = ifConvert(loop);
    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;
}

TEST(IfConvert, NestedIfsConvertInsideOut)
{
    //   x = ld; c1 = ld; c2 = ld
    //   if (c1) { if (c2) { v = mul(x,x) } else { v = add(x,x) } }
    //   else    { v = copy(x) }
    //   st(v)
    CfgLoop loop;
    loop.name = "nested";
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "x", {}));
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "c1", {}));
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "c2", {}));
    std::vector<CfgStmt> inner = {CfgStmt::makeIf(
        CfgOperand::value("c2"),
        {CfgStmt::makeOp(Opcode::Mul, "v",
                         {CfgOperand::value("x"),
                          CfgOperand::value("x")})},
        {CfgStmt::makeOp(Opcode::Add, "v",
                         {CfgOperand::value("x"),
                          CfgOperand::value("x")})})};
    loop.body.push_back(CfgStmt::makeIf(
        CfgOperand::value("c1"), std::move(inner),
        {CfgStmt::makeOp(Opcode::Copy, "v",
                         {CfgOperand::value("x")})}));
    loop.body.push_back(
        CfgStmt::makeOp(Opcode::Store, "", {CfgOperand::value("v")}));

    EXPECT_EQ(countSelects(loop), 2);  // Inner merge + outer merge.
    const Ddg g = ifConvert(loop);
    std::string why;
    EXPECT_TRUE(verifyDdg(g, &why)) << why;
}

TEST(IfConvert, CarriedUseBindsToTheMergedValue)
{
    //   c = ld
    //   if (c) { s = add(s@1, c) } else { s = copy(s@1) }
    //   st(s)
    // The loop-carried reads of s must reach the *select*, giving a
    // recurrence through the merge.
    CfgLoop loop;
    loop.name = "carried";
    loop.body.push_back(CfgStmt::makeOp(Opcode::Load, "c", {}));
    loop.body.push_back(CfgStmt::makeIf(
        CfgOperand::value("c"),
        {CfgStmt::makeOp(Opcode::Add, "s",
                         {CfgOperand::value("s", 1),
                          CfgOperand::value("c")})},
        {CfgStmt::makeOp(Opcode::Copy, "s",
                         {CfgOperand::value("s", 1)})}));
    loop.body.push_back(
        CfgStmt::makeOp(Opcode::Store, "", {CfgOperand::value("s")}));

    const Ddg g = ifConvert(loop);
    std::string why;
    ASSERT_TRUE(verifyDdg(g, &why)) << why;

    // The carried edges originate at the select.
    NodeId sel = invalidNode;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (g.node(n).op == Opcode::Select)
            sel = n;
    }
    ASSERT_NE(sel, invalidNode);
    int carriedFromSelect = 0;
    for (EdgeId e : g.valueUses(sel))
        carriedFromSelect += g.edge(e).distance == 1;
    EXPECT_EQ(carriedFromSelect, 2);
}

TEST(IfConvert, Errors)
{
    // Zero-distance forward reference.
    CfgLoop fwd;
    fwd.body.push_back(
        CfgStmt::makeOp(Opcode::Store, "", {CfgOperand::value("x")}));
    fwd.body.push_back(CfgStmt::makeOp(Opcode::Load, "x", {}));
    EXPECT_THROW(ifConvert(fwd), FatalError);

    // Conditional definition with no prior value.
    CfgLoop oneSide;
    oneSide.body.push_back(CfgStmt::makeOp(Opcode::Load, "c", {}));
    oneSide.body.push_back(CfgStmt::makeIf(
        CfgOperand::value("c"),
        {CfgStmt::makeOp(Opcode::Load, "y", {})}, {}));
    oneSide.body.push_back(
        CfgStmt::makeOp(Opcode::Store, "", {CfgOperand::value("y")}));
    EXPECT_THROW(ifConvert(oneSide), FatalError);

    // Unknown invariant.
    CfgLoop badInv;
    badInv.body.push_back(
        CfgStmt::makeOp(Opcode::Add, "a", {CfgOperand::inv("nope")}));
    EXPECT_THROW(ifConvert(badInv), FatalError);

    // Store defining a name.
    CfgLoop badStore;
    badStore.body.push_back(CfgStmt::makeOp(Opcode::Load, "x", {}));
    badStore.body.push_back(CfgStmt::makeOp(Opcode::Store, "oops",
                                            {CfgOperand::value("x")}));
    EXPECT_THROW(ifConvert(badStore), FatalError);
}

TEST(IfConvert, ConvertedLoopPipelinesAndExecutes)
{
    const Ddg g = ifConvert(diamondLoop());
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 8;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r = pipelineLoop(g, m, Strategy::BestOfAll,
                                          opts);
    ASSERT_TRUE(r.success);
    std::string why;
    EXPECT_TRUE(equivalentToSequential(g, r.graph(), m, r.sched,
                                       r.alloc.rotAlloc, 20, &why))
        << why;
}

} // namespace
} // namespace swp
