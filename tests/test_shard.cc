/**
 * @file
 * Cross-process sharding tests: shard-spec parsing and partition
 * properties, shard-file round-trips, the exhaustive small-grid
 * identity property (merged output == serial baseline for every
 * shards x threads x chunk-policy combination), and the merge's
 * refusal of overlapping, missing, and mismatched shard sets.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "driver/shard_merge.hh"
#include "driver/suite_runner.hh"
#include "support/diag.hh"
#include "support/strutil.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

TEST(ShardSpec, ParseAcceptsWellFormedSpecs)
{
    ShardSpec s;
    ASSERT_TRUE(parseShardSpec("0/1", s));
    EXPECT_EQ(s.index, 0);
    EXPECT_EQ(s.count, 1);
    EXPECT_FALSE(s.active());

    ASSERT_TRUE(parseShardSpec("2/3", s));
    EXPECT_EQ(s.index, 2);
    EXPECT_EQ(s.count, 3);
    EXPECT_TRUE(s.active());
    EXPECT_EQ(formatShardSpec(s), "2/3");
}

TEST(ShardSpec, ParseRejectsMalformedSpecs)
{
    ShardSpec s;
    s.index = 7;
    s.count = 9;
    for (const char *bad :
         {"", "1", "1/", "/2", "3/3", "4/3", "-1/2", "1/0", "1/-2",
          "a/b", "1/2x", "x1/2", "1//2", "1/2/3", " 1/2"}) {
        EXPECT_FALSE(parseShardSpec(bad, s)) << bad;
    }
    // Failed parses never touch the output.
    EXPECT_EQ(s.index, 7);
    EXPECT_EQ(s.count, 9);
}

TEST(ShardSpec, OwnershipPartitionsEveryIndex)
{
    for (int count = 1; count <= 5; ++count) {
        for (std::size_t job = 0; job < 40; ++job) {
            int owners = 0;
            for (int index = 0; index < count; ++index) {
                const ShardSpec spec{index, count};
                owners += spec.owns(job);
            }
            EXPECT_EQ(owners, 1)
                << "job " << job << " with " << count << " shards";
        }
    }
}

TEST(ShardFile, RoundTripPreservesEveryByte)
{
    ShardDoc doc;
    doc.tool = "swpipe_cli";
    doc.config = "00ffab1234567890";
    doc.configSummary = "machine=p2l4 \"quoted\" \\backslash";
    doc.suiteSeed = "406273672898";
    doc.suiteLoops = 12;
    doc.totalJobs = 12;
    doc.shard = {1, 3};
    doc.prologue = "a,b,c\n";
    doc.records.push_back({1, 0, "plain line\n"});
    doc.records.push_back(
        {4, 1, std::string("control \x01 byte, tab\t, \"quotes\", "
                           "backslash \\ and unicode \xcf\x80\n")});
    doc.records.push_back({7, 0, ""});

    const std::string path = testing::TempDir() + "/swp_shard_rt.json";
    writeShardFile(path, doc);
    const ShardDoc back = readShardFile(path);

    EXPECT_EQ(back.tool, doc.tool);
    EXPECT_EQ(back.config, doc.config);
    EXPECT_EQ(back.configSummary, doc.configSummary);
    EXPECT_EQ(back.suiteSeed, doc.suiteSeed);
    EXPECT_EQ(back.suiteLoops, doc.suiteLoops);
    EXPECT_EQ(back.totalJobs, doc.totalJobs);
    EXPECT_EQ(back.shard.index, doc.shard.index);
    EXPECT_EQ(back.shard.count, doc.shard.count);
    EXPECT_EQ(back.prologue, doc.prologue);
    ASSERT_EQ(back.records.size(), doc.records.size());
    for (std::size_t i = 0; i < doc.records.size(); ++i) {
        EXPECT_EQ(back.records[i].job, doc.records[i].job) << i;
        EXPECT_EQ(back.records[i].rc, doc.records[i].rc) << i;
        EXPECT_EQ(back.records[i].text, doc.records[i].text) << i;
    }
}

TEST(ShardFile, WriteIsAtomicAndLeavesNoTempFiles)
{
    ShardDoc doc;
    doc.tool = "swpipe_cli";
    doc.config = "cfg";
    doc.totalJobs = 1;
    doc.shard = {0, 1};
    doc.records.push_back({0, 0, "r\n"});

    const std::string dir =
        testing::TempDir() + "/swp_shard_atomic_dir";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/out.json";

    // Writing over a pre-existing file must replace it whole.
    {
        std::ofstream stale(path);
        stale << "stale partial content";
    }
    writeShardFile(path, doc);
    EXPECT_EQ(readShardFile(path).records.size(), 1u);

    // The temp file used for the atomic rename must be gone.
    int entries = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1) << "temp file left behind in " << dir;

    // An unwritable destination fails up front (no partial file).
    EXPECT_THROW(writeShardFile(dir + "/no_such_dir/out.json", doc),
                 FatalError);
}

TEST(ShardFile, DiagnosticsNameTheOffendingFile)
{
    const std::string path =
        testing::TempDir() + "/swp_shard_named_bad.json";
    {
        std::ofstream out(path);
        out << "{\"format\": \"swp-shard-v1\", \"tool\": \"trunc";
    }
    try {
        readShardFile(path);
        FAIL() << "accepted truncated JSON";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(ShardFile, ReadRejectsGarbage)
{
    const std::string dir = testing::TempDir();
    const auto writeAndRead = [&](const std::string &content) {
        const std::string path = dir + "/swp_shard_bad.json";
        {
            std::ofstream out(path);
            out << content;
        }
        return readShardFile(path);
    };
    EXPECT_THROW(writeAndRead("not json"), FatalError);
    EXPECT_THROW(writeAndRead("{}"), FatalError);
    EXPECT_THROW(writeAndRead("{\"format\": \"swp-shard-v99\"}"),
                 FatalError);
    EXPECT_THROW(writeAndRead("{\"format\": \"swp-shard-v1\"} extra"),
                 FatalError);
    EXPECT_THROW(readShardFile(dir + "/swp_no_such_file.json"),
                 FatalError);
}

/** A small pinned-seed suite and a two-variant grid over it. */
std::vector<SuiteLoop>
shardTestSuite(int loops)
{
    SuiteParams params;  // Pinned default seed.
    params.numLoops = loops;
    return generateSuite(params);
}

std::vector<BatchJob>
shardTestGrid(std::size_t loops)
{
    std::vector<BatchJob> jobs;
    for (std::size_t i = 0; i < loops; ++i) {
        BatchJob best;
        best.loop = int(i);
        best.strategy = Strategy::BestOfAll;
        best.options.registers = 16;
        best.options.multiSelect = true;
        best.options.reuseLastIi = true;
        jobs.push_back(best);

        BatchJob ideal;
        ideal.loop = int(i);
        ideal.ideal = true;
        jobs.push_back(ideal);
    }
    return jobs;
}

/** The per-job report text a hypothetical consumer would emit. */
std::string
renderRecord(std::size_t job, const PipelineResult &r)
{
    return strprintf("job %zu: fits=%d ii=%d regs=%d spills=%d "
                     "attempts=%d\n",
                     job, int(r.success), r.ii(), r.alloc.regsRequired,
                     r.spilledLifetimes, r.attempts);
}

/** Build the shard document one sharded consumer process would write. */
ShardDoc
shardDocFor(const std::vector<BatchJob> &jobs,
            const std::vector<PipelineResult> &results, ShardSpec spec)
{
    ShardDoc doc;
    doc.tool = "test_shard";
    doc.config = "test-config-fp";
    doc.configSummary = "test grid";
    doc.suiteSeed = "406273672898";
    doc.suiteLoops = int(jobs.size() / 2);
    doc.totalJobs = jobs.size();
    doc.shard = spec;
    doc.prologue = "prologue line\n";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (spec.owns(i))
            doc.records.push_back({i, 0, renderRecord(i, results[i])});
    }
    return doc;
}

TEST(ShardMerge, MergedOutputMatchesSerialBaselineExhaustively)
{
    // The acceptance property, exercised on a small grid for *every*
    // (shard count, thread count, chunk policy) combination: the
    // merged shard set is byte-identical to the serial baseline.
    const std::vector<SuiteLoop> suite = shardTestSuite(6);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = shardTestGrid(suite.size());

    SuiteRunner serial(1);
    const auto baseline = serial.run(suite, m, jobs);
    std::string expected = "prologue line\n";
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expected += renderRecord(i, baseline[i]);

    for (int shards = 1; shards <= 4; ++shards) {
        for (int threads = 1; threads <= 4; ++threads) {
            for (const ChunkPolicy chunk :
                 {ChunkPolicy::Auto, ChunkPolicy::Fixed}) {
                std::vector<ShardDoc> docs;
                for (int s = 0; s < shards; ++s) {
                    SuiteRunner runner(threads);
                    RunOptions opts;
                    opts.shard = {s, shards};
                    opts.chunk = chunk;
                    const auto results =
                        runner.run(suite, m, jobs, opts);
                    // Round-trip through the serializer so the merge
                    // sees exactly what a cluster run's files carry.
                    const std::string path =
                        testing::TempDir() + "/swp_shard_" +
                        std::to_string(s) + ".json";
                    writeShardFile(
                        path, shardDocFor(jobs, results, opts.shard));
                    docs.push_back(readShardFile(path));
                }
                const MergeOutput merged = mergeShards(docs);
                EXPECT_EQ(merged.text, expected)
                    << shards << " shards, " << threads << " threads, "
                    << chunkPolicyName(chunk);
                EXPECT_EQ(merged.rc, 0);
            }
        }
    }
}

TEST(ShardMerge, ShardedRunsLeaveUnownedSlotsUntouched)
{
    const std::vector<SuiteLoop> suite = shardTestSuite(5);
    const Machine m = Machine::p1l4();
    const std::vector<BatchJob> jobs = shardTestGrid(suite.size());

    SuiteRunner runner(2);
    RunOptions opts;
    opts.shard = {1, 3};
    const auto results = runner.run(suite, m, jobs, opts);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (opts.shard.owns(i))
            continue;
        // Default-constructed: never evaluated, no graph bound.
        EXPECT_FALSE(results[i].success) << i;
        EXPECT_EQ(results[i].attempts, 0) << i;
        EXPECT_FALSE(results[i].ownsGraph()) << i;
    }
}

/** A ready-made consistent 3-shard set for the rejection tests. */
std::vector<ShardDoc>
consistentDocs()
{
    const std::vector<SuiteLoop> suite = shardTestSuite(4);
    const Machine m = Machine::p2l4();
    const std::vector<BatchJob> jobs = shardTestGrid(suite.size());
    SuiteRunner runner(1);
    const auto results = runner.run(suite, m, jobs);
    std::vector<ShardDoc> docs;
    for (int s = 0; s < 3; ++s)
        docs.push_back(shardDocFor(jobs, results, ShardSpec{s, 3}));
    return docs;
}

/** Expect mergeShards to refuse, with `needle` in the message. */
void
expectMergeError(const std::vector<ShardDoc> &docs,
                 const std::string &needle)
{
    try {
        mergeShards(docs);
        FAIL() << "merge accepted an inconsistent shard set ("
               << needle << ")";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(ShardMerge, RefusesOverlappingShards)
{
    std::vector<ShardDoc> docs = consistentDocs();
    docs[2] = docs[0];  // Shard 0 provided twice, shard 2 missing.
    expectMergeError(docs, "overlapping");
}

TEST(ShardMerge, RefusesMissingShards)
{
    std::vector<ShardDoc> docs = consistentDocs();
    docs.pop_back();
    expectMergeError(docs, "missing shard 2/3");
}

TEST(ShardMerge, RefusesWrongSeedShards)
{
    std::vector<ShardDoc> docs = consistentDocs();
    docs[1].suiteSeed = "99";
    expectMergeError(docs, "seed");
}

TEST(ShardMerge, RefusesMismatchedConfigs)
{
    std::vector<ShardDoc> docs = consistentDocs();
    docs[1].config = "other-config-fp";
    expectMergeError(docs, "different configuration");
}

TEST(ShardMerge, RefusesMismatchedGrids)
{
    std::vector<ShardDoc> docs = consistentDocs();
    docs[1].totalJobs += 1;
    expectMergeError(docs, "-job grid");

    docs = consistentDocs();
    docs[1].shard.count = 4;
    expectMergeError(docs, "shards");
}

TEST(ShardMerge, RefusesRecordsOutsideTheirShard)
{
    std::vector<ShardDoc> docs = consistentDocs();
    // Move a record of shard 1 into shard 0's file.
    docs[0].records.push_back(docs[1].records.front());
    expectMergeError(docs, "belongs to shard");
}

TEST(ShardMerge, RefusesDuplicateRecords)
{
    std::vector<ShardDoc> docs = consistentDocs();
    docs[1].records.push_back(docs[1].records.front());
    expectMergeError(docs, "appears twice");
}

TEST(ShardMerge, RefusesShardsMissingJobs)
{
    std::vector<ShardDoc> docs = consistentDocs();
    docs[1].records.pop_back();
    expectMergeError(docs, "is missing job");
}

TEST(ShardMerge, RefusesEmptyAndMixedToolSets)
{
    expectMergeError({}, "no shard files");

    std::vector<ShardDoc> docs = consistentDocs();
    docs[1].tool = "other_tool";
    expectMergeError(docs, "produced by");
}

TEST(ShardMerge, DuplicateDiagnosticNamesTheSourceFiles)
{
    // When docs came from files, the overlap diagnostic must say which
    // files collided so a cluster user can fix the right inputs.
    std::vector<ShardDoc> docs = consistentDocs();
    const std::string pathA = testing::TempDir() + "/swp_dup_a.json";
    const std::string pathB = testing::TempDir() + "/swp_dup_b.json";
    writeShardFile(pathA, docs[0]);
    writeShardFile(pathB, docs[0]);
    docs[2] = readShardFile(pathB);
    docs[0] = readShardFile(pathA);

    try {
        mergeShards(docs);
        FAIL() << "merge accepted a duplicated shard";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(pathA), std::string::npos) << msg;
        EXPECT_NE(msg.find(pathB), std::string::npos) << msg;
        EXPECT_NE(msg.find("twice"), std::string::npos) << msg;
    }
}

TEST(ShardFile, BenchJobRecordsRoundTrip)
{
    ShardDoc doc;
    doc.tool = "bench:fake";
    doc.config = "cfg";
    doc.totalJobs = 0;
    doc.shard = {1, 2};
    doc.benchJobs.push_back(
        {"00ab", true, false, 7, 12, 0, 1, 3, 4});
    doc.benchJobs.push_back(
        {"00cd", false, true, 9, 30, 5, 48, 99, 6});

    const std::string path =
        testing::TempDir() + "/swp_shard_bench_rt.json";
    writeShardFile(path, doc);
    const ShardDoc back = readShardFile(path);
    ASSERT_EQ(back.benchJobs.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(back.benchJobs[i].key, doc.benchJobs[i].key) << i;
        EXPECT_EQ(back.benchJobs[i].success, doc.benchJobs[i].success);
        EXPECT_EQ(back.benchJobs[i].usedFallback,
                  doc.benchJobs[i].usedFallback);
        EXPECT_EQ(back.benchJobs[i].ii, doc.benchJobs[i].ii) << i;
        EXPECT_EQ(back.benchJobs[i].regs, doc.benchJobs[i].regs) << i;
        EXPECT_EQ(back.benchJobs[i].spills, doc.benchJobs[i].spills);
        EXPECT_EQ(back.benchJobs[i].rounds, doc.benchJobs[i].rounds);
        EXPECT_EQ(back.benchJobs[i].attempts, doc.benchJobs[i].attempts);
        EXPECT_EQ(back.benchJobs[i].memOps, doc.benchJobs[i].memOps);
    }
    EXPECT_EQ(back.source, path);
}

/** A 2-shard bench-record set with one key duplicated across shards. */
std::vector<ShardDoc>
benchRecordDocs()
{
    std::vector<ShardDoc> docs(2);
    for (int s = 0; s < 2; ++s) {
        docs[s].tool = "bench:fake";
        docs[s].config = "cfg";
        docs[s].totalJobs = 4;
        docs[s].shard = {s, 2};
        for (std::size_t j = std::size_t(s); j < 4; j += 2)
            docs[s].records.push_back({j, 0, ""});
    }
    docs[0].benchJobs.push_back({"key-a", true, false, 3, 8, 0, 1, 2, 1});
    docs[0].benchJobs.push_back({"key-b", true, false, 5, 9, 1, 2, 4, 2});
    // Pure jobs: the shared key carries identical fields in both files.
    docs[1].benchJobs.push_back({"key-b", true, false, 5, 9, 1, 2, 4, 2});
    docs[1].benchJobs.push_back({"key-c", false, true, 6, 7, 2, 3, 5, 3});
    return docs;
}

TEST(BenchRecordMerge, UnionsDeduplicatingIdenticalRecords)
{
    const auto merged = mergeBenchRecords(benchRecordDocs());
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].key, "key-a");
    EXPECT_EQ(merged[1].key, "key-b");
    EXPECT_EQ(merged[2].key, "key-c");
    EXPECT_EQ(merged[1].ii, 5);
    EXPECT_TRUE(merged[2].usedFallback);
}

TEST(BenchRecordMerge, RefusesConflictingRecordsForOneKey)
{
    std::vector<ShardDoc> docs = benchRecordDocs();
    docs[1].benchJobs[0].ii = 99;  // Same key, different result.
    try {
        mergeBenchRecords(docs);
        FAIL() << "accepted conflicting bench records";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("conflicting"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("key-b"), std::string::npos)
            << e.what();
    }
}

TEST(BenchRecordMerge, ValidatesTheShardSetLikeMerge)
{
    std::vector<ShardDoc> docs = benchRecordDocs();
    docs.pop_back();
    EXPECT_THROW(mergeBenchRecords(docs), FatalError);

    docs = benchRecordDocs();
    docs[1].config = "other";
    EXPECT_THROW(mergeBenchRecords(docs), FatalError);
}

TEST(ShardMerge, MergedRcIsTheOrOfRecordRcs)
{
    std::vector<ShardDoc> docs = consistentDocs();
    EXPECT_EQ(mergeShards(docs).rc, 0);
    docs[1].records.front().rc = 1;
    EXPECT_EQ(mergeShards(docs).rc, 1);
}

TEST(ShardMerge, SingleShardSetReproducesTheRun)
{
    const std::vector<SuiteLoop> suite = shardTestSuite(3);
    const Machine m = Machine::p2l6();
    const std::vector<BatchJob> jobs = shardTestGrid(suite.size());
    SuiteRunner runner(1);
    const auto results = runner.run(suite, m, jobs);

    std::string expected = "prologue line\n";
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expected += renderRecord(i, results[i]);

    const std::vector<ShardDoc> docs = {
        shardDocFor(jobs, results, ShardSpec{0, 1})};
    EXPECT_EQ(mergeShards(docs).text, expected);
}

} // namespace
} // namespace swp
