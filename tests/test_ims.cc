/**
 * @file
 * Iterative Modulo Scheduling tests: correctness, backtracking under
 * resource pressure, recurrences and complex groups.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/builder.hh"
#include "machine/machine.hh"
#include "sched/ims.hh"
#include "sched/mii.hh"
#include "sched/schedule.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

TEST(Ims, SchedulesPaperExampleAtMii)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    ImsScheduler ims;
    const auto s = ims.scheduleAt(g, m, 1);
    ASSERT_TRUE(s.has_value());
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, *s, &why)) << why;
}

TEST(Ims, FailsBelowRecMii)
{
    DdgBuilder b("rec");
    const NodeId a = b.add("a");
    b.flow(a, a, 1);
    const NodeId st = b.store();
    b.flow(a, st);
    const Ddg g = b.take();
    ImsScheduler ims;
    EXPECT_FALSE(ims.scheduleAt(g, Machine::p2l4(), 3).has_value());
    EXPECT_TRUE(ims.scheduleAt(g, Machine::p2l4(), 4).has_value());
}

TEST(Ims, SaturatedResourcesForceEvictionButConverge)
{
    // 12 independent mem streams on one mem unit: heavy competition at
    // the exact ResMII.
    DdgBuilder b("sat");
    for (int i = 0; i < 6; ++i) {
        const NodeId ld = b.load();
        const NodeId st = b.store();
        b.flow(ld, st);
    }
    const Ddg g = b.take();
    const Machine m = Machine::p1l4();
    ASSERT_EQ(mii(g, m), 12);

    ImsScheduler ims;
    const auto s = ims.scheduleAt(g, m, 12);
    ASSERT_TRUE(s.has_value());
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, *s, &why)) << why;
}

TEST(Ims, HandlesFusedGroupsAtExactOffsets)
{
    DdgBuilder b("fused");
    const NodeId ld = b.load("Ls");
    const NodeId mul = b.mul("*");
    const NodeId st = b.store("st");
    b.graph().addEdge(ld, mul, DepKind::RegFlow, 0, true);
    b.flow(mul, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    ImsScheduler ims;
    const auto s = ims.scheduleAt(g, m, 2);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->time(mul) - s->time(ld), m.latency(Opcode::Load));
}

TEST(Ims, NonPipelinedDivideRespected)
{
    DdgBuilder b("dv");
    const NodeId ld = b.load();
    const NodeId dv = b.div();
    const NodeId st = b.store();
    b.flow(ld, dv);
    b.flow(dv, st);
    const Ddg g = b.take();
    ImsScheduler ims;
    EXPECT_FALSE(ims.scheduleAt(g, Machine::p2l4(), 16).has_value());
    EXPECT_TRUE(ims.scheduleAt(g, Machine::p2l4(), 17).has_value());
}

TEST(Ims, MixedRecurrenceAndResourcePressure)
{
    DdgBuilder b("mix");
    const NodeId acc = b.add("acc");
    b.flow(acc, acc, 1);
    std::vector<NodeId> lds;
    for (int i = 0; i < 4; ++i) {
        const NodeId ld = b.load();
        lds.push_back(ld);
        const NodeId mul = b.mul();
        b.flow(ld, mul);
        const NodeId st = b.store();
        b.flow(mul, st);
    }
    b.flow(lds[0], acc);
    const NodeId st = b.store();
    b.flow(acc, st);
    const Ddg g = b.take();
    const Machine m = Machine::p1l4();

    ImsScheduler ims;
    const int lower = mii(g, m);
    const auto s = ims.scheduleAt(g, m, lower);
    ASSERT_TRUE(s.has_value());
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, *s, &why)) << why;
}

TEST(Ims, ReusedSchedulerMatchesFreshSchedulerAcrossLoops)
{
    // Same workspace-reuse regression as the HRMS twin: one scheduler
    // object fed interleaved loops/machines/IIs must match a fresh
    // scheduler on every probe.
    SuiteParams params;
    params.numLoops = 10;
    const std::vector<SuiteLoop> suite = generateSuite(params);
    const Machine machines[] = {Machine::p1l4(), Machine::p2l4()};
    ImsScheduler reused;
    for (const SuiteLoop &loop : suite) {
        for (const Machine &m : machines) {
            const int lower = mii(loop.graph, m);
            for (int ii = std::max(1, lower - 1); ii < lower + 3; ++ii) {
                ImsScheduler fresh;
                const auto a = reused.scheduleAt(loop.graph, m, ii);
                const auto b = fresh.scheduleAt(loop.graph, m, ii);
                ASSERT_EQ(a.has_value(), b.has_value())
                    << loop.graph.name() << " on " << m.name()
                    << " ii=" << ii;
                if (!a)
                    continue;
                for (NodeId v = 0; v < loop.graph.numNodes(); ++v) {
                    ASSERT_EQ(a->time(v), b->time(v));
                    ASSERT_EQ(a->unit(v), b->unit(v));
                }
            }
        }
    }
}

} // namespace
} // namespace swp
