/**
 * @file
 * Complex-group construction tests (Section 4.3 fusion).
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "machine/machine.hh"
#include "sched/groups.hh"

namespace swp
{
namespace
{

TEST(Groups, AllSingletonsWithoutFusedEdges)
{
    const Ddg g = buildPaperExampleLoop();
    const GroupSet groups(g, Machine::p2l4());
    EXPECT_EQ(groups.numGroups(), g.numNodes());
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        EXPECT_TRUE(groups.group(groups.groupOf(n)).singleton());
        EXPECT_EQ(groups.offsetOf(n), 0);
    }
}

TEST(Groups, PairOffsetsEqualProducerLatency)
{
    DdgBuilder b("pair");
    const NodeId ld = b.load("Ls");
    const NodeId mul = b.mul("*");
    const NodeId st = b.store("st");
    b.graph().addEdge(ld, mul, DepKind::RegFlow, 0, true);
    b.flow(mul, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    const GroupSet groups(g, m);
    EXPECT_EQ(groups.numGroups(), 2);
    const int gi = groups.groupOf(ld);
    ASSERT_EQ(gi, groups.groupOf(mul));
    EXPECT_EQ(groups.offsetOf(ld), 0);
    EXPECT_EQ(groups.offsetOf(mul), m.latency(Opcode::Load));
}

TEST(Groups, ChainsMergeTransitively)
{
    // producer -> spill store, spill load -> consumer, and the consumer
    // itself fused to another store: one group of four.
    DdgBuilder b("chain");
    const NodeId a = b.add("a");
    const NodeId ss = b.store("Ss");
    const NodeId ls = b.load("Ls");
    const NodeId c = b.mul("c");
    const NodeId ss2 = b.store("Ss2");
    b.graph().addEdge(a, ss, DepKind::RegFlow, 0, true);
    b.graph().addEdge(ls, c, DepKind::RegFlow, 0, true);
    b.graph().addEdge(c, ss2, DepKind::RegFlow, 0, true);
    b.graph().addEdge(a, c, DepKind::RegFlow, 0, false);
    b.mem(ss, ls, 1);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    const GroupSet groups(g, m);
    // {a, ss} and {ls, c, ss2}.
    EXPECT_EQ(groups.groupOf(a), groups.groupOf(ss));
    EXPECT_EQ(groups.groupOf(ls), groups.groupOf(c));
    EXPECT_EQ(groups.groupOf(c), groups.groupOf(ss2));
    EXPECT_NE(groups.groupOf(a), groups.groupOf(ls));

    EXPECT_EQ(groups.offsetOf(ss), m.latency(Opcode::Add));
    EXPECT_EQ(groups.offsetOf(c), m.latency(Opcode::Load));
    EXPECT_EQ(groups.offsetOf(ss2),
              m.latency(Opcode::Load) + m.latency(Opcode::Mul));
}

TEST(Groups, MembersSortedByOffset)
{
    DdgBuilder b("sorted");
    const NodeId ld = b.load();
    const NodeId a1 = b.add();
    const NodeId st = b.store();
    b.graph().addEdge(ld, a1, DepKind::RegFlow, 0, true);
    b.graph().addEdge(a1, st, DepKind::RegFlow, 0, true);
    const Ddg g = b.take();
    const GroupSet groups(g, Machine::p2l4());

    const ComplexGroup &grp = groups.group(groups.groupOf(ld));
    ASSERT_EQ(grp.members.size(), 3u);
    EXPECT_EQ(grp.members[0], ld);
    EXPECT_EQ(grp.members[1], a1);
    EXPECT_EQ(grp.members[2], st);
    EXPECT_EQ(grp.offsets[0], 0);
    EXPECT_LT(grp.offsets[0], grp.offsets[1]);
    EXPECT_LT(grp.offsets[1], grp.offsets[2]);
}

} // namespace
} // namespace swp
