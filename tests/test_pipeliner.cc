/**
 * @file
 * Register-constrained driver tests: increase-II, iterative spilling
 * (with and without the Section 4.5 accelerators), best-of-all, and the
 * convergence/divergence behaviour the paper reports.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "ir/builder.hh"
#include "pipeliner/pipeliner.hh"
#include "sched/fingerprint.hh"
#include "sched/mii.hh"
#include "sched/sched_memo.hh"
#include "sched/scheduler.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

TEST(Pipeliner, IdealScheduleOfPaperExample)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    const PipelineResult r = pipelineIdeal(g, m);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.ii(), 1);
    EXPECT_EQ(r.alloc.maxLive, 11);
}

TEST(Pipeliner, IncreaseIiReachesSevenRegisters)
{
    // Figure 3: at II=2 the example loop needs 7 registers (+1 inv).
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    PipelinerOptions opts;
    opts.registers = 9;  // 7 rotating + 1 invariant fits; II=1 doesn't.
    const PipelineResult r = pipelineLoop(g, m, Strategy::IncreaseII,
                                          opts);
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(r.usedFallback);
    EXPECT_EQ(r.ii(), 2);
    EXPECT_LE(r.alloc.regsRequired, 9);
}

TEST(Pipeliner, SpillingBeatsIncreaseIiOnTheExample)
{
    // Section 4.3: with 6 registers, spilling V1 yields II=2 and 5
    // rotating registers, while increase-II needs II=3 or more.
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    PipelinerOptions opts;
    opts.registers = 6;
    opts.heuristic = SpillHeuristic::MaxLT;

    const PipelineResult spill = pipelineLoop(g, m, Strategy::Spill, opts);
    EXPECT_TRUE(spill.success);
    EXPECT_FALSE(spill.usedFallback);
    EXPECT_GT(spill.spilledLifetimes, 0);
    EXPECT_LE(spill.alloc.regsRequired, 6);

    const PipelineResult incr =
        pipelineLoop(g, m, Strategy::IncreaseII, opts);
    EXPECT_TRUE(incr.success);
    EXPECT_GE(incr.ii(), spill.ii());
}

TEST(Pipeliner, SpillResultValidatesAndFits)
{
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 32;
    const PipelineResult r = pipelineLoop(g, m, Strategy::Spill, opts);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.alloc.regsRequired, 32);
    std::string why;
    EXPECT_TRUE(validateSchedule(r.graph(), m, r.sched, &why)) << why;
    EXPECT_GT(r.spilledLifetimes, 0);
    // Spilling costs II: the final II exceeds the ideal MII.
    EXPECT_GE(r.ii(), mii(g, m));
}

TEST(Pipeliner, Apsi47ConvergesUnderIncreaseIi)
{
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 32;
    const PipelineResult r = pipelineLoop(g, m, Strategy::IncreaseII,
                                          opts);
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(r.usedFallback);
    EXPECT_GT(r.ii(), mii(g, m));  // Had to slow down to fit.
}

TEST(Pipeliner, Apsi50NeverConvergesUnderIncreaseIi)
{
    const Ddg g = buildApsi50Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 32;
    const PipelineResult r = pipelineLoop(g, m, Strategy::IncreaseII,
                                          opts);
    // Falls back to local scheduling, and even that cannot fit the
    // distance components + invariants in 32 registers.
    EXPECT_TRUE(r.usedFallback);
    EXPECT_FALSE(r.success);
}

TEST(Pipeliner, Apsi50ConvergesBySpilling)
{
    const Ddg g = buildApsi50Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 32;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r = pipelineLoop(g, m, Strategy::Spill, opts);
    ASSERT_TRUE(r.success) << "spilling must reach 32 registers";
    EXPECT_FALSE(r.usedFallback);
    EXPECT_LE(r.alloc.regsRequired, 32);
    std::string why;
    EXPECT_TRUE(validateSchedule(r.graph(), m, r.sched, &why)) << why;
}

TEST(Pipeliner, Apsi50ConvergesEvenTo16Registers)
{
    const Ddg g = buildApsi50Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 16;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    const PipelineResult r = pipelineLoop(g, m, Strategy::Spill, opts);
    EXPECT_TRUE(r.success);
    EXPECT_LE(r.alloc.regsRequired, 16);
}

TEST(Pipeliner, MultiSelectReducesAttempts)
{
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions slow;
    slow.registers = 24;
    PipelinerOptions fast = slow;
    fast.multiSelect = true;
    fast.reuseLastIi = true;

    const PipelineResult rSlow = pipelineLoop(g, m, Strategy::Spill, slow);
    const PipelineResult rFast = pipelineLoop(g, m, Strategy::Spill, fast);
    ASSERT_TRUE(rSlow.success);
    ASSERT_TRUE(rFast.success);
    EXPECT_LT(rFast.rounds, rSlow.rounds);
    EXPECT_LE(rFast.attempts, rSlow.attempts);
}

TEST(Pipeliner, BestOfAllNeverWorseThanSpill)
{
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 32;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    for (const Ddg &g :
         {buildApsi47Analogue(), buildApsi50Analogue(),
          buildPaperExampleLoop()}) {
        const PipelineResult spill =
            pipelineLoop(g, m, Strategy::Spill, opts);
        const PipelineResult best =
            pipelineLoop(g, m, Strategy::BestOfAll, opts);
        ASSERT_TRUE(best.success) << g.name();
        if (spill.success) {
            EXPECT_LE(best.ii(), spill.ii()) << g.name();
        }
        std::string why;
        EXPECT_TRUE(validateSchedule(best.graph(), m, best.sched, &why))
            << g.name() << ": " << why;
    }
}

TEST(Pipeliner, NoPressureMeansNoSpill)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    PipelinerOptions opts;
    opts.registers = 64;
    const PipelineResult r = pipelineLoop(g, m, Strategy::Spill, opts);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.spilledLifetimes, 0);
    EXPECT_EQ(r.ii(), 1);
    EXPECT_EQ(r.rounds, 1);
}

TEST(Pipeliner, RegistersAtIiSweepIsIiMonotoneForApsi47)
{
    // Figure 4a: the converging loop's requirement decreases (weakly,
    // modulo small scheduler noise) as II grows; check the endpoints.
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    const int lower = mii(g, m);
    const int early = registersAtIi(g, m, lower, opts);
    const int late = registersAtIi(g, m, lower + 20, opts);
    ASSERT_GT(early, 0);
    ASSERT_GT(late, 0);
    EXPECT_GT(early, 32);
    EXPECT_LT(late, early);
}

TEST(Pipeliner, Apsi50FloorIsIiIndependent)
{
    // Figure 4b: the non-converging loop's requirement never drops to
    // 32, no matter the II.
    const Ddg g = buildApsi50Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    const int lower = mii(g, m);
    for (int ii = lower; ii <= lower + 40; ii += 8) {
        const int regs = registersAtIi(g, m, ii, opts);
        if (regs < 0)
            continue;
        EXPECT_GT(regs, 32) << "ii=" << ii;
    }
}

TEST(Pipeliner, SpillKeepsBestScheduleWhenRoundsRunOut)
{
    // Regression: exhausting maxSpillRounds used to discard every
    // modulo schedule found and fall back to acyclic scheduling of the
    // original loop, even though the candidates-exhausted path kept its
    // schedule. The driver must keep the best (lowest register
    // requirement) schedule seen across the rounds.
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 2;  // Nothing fits: every round is over budget.
    opts.heuristic = SpillHeuristic::MaxLT;
    opts.maxSpillRounds = 3;

    int minRegsSeen = std::numeric_limits<int>::max();
    int rounds = 0;
    const PipelineResult r = spillStrategy(
        g, m, opts, [&](const SpillRoundInfo &info) {
            minRegsSeen = std::min(minRegsSeen, info.regsRequired);
            rounds = info.round;
        });

    ASSERT_EQ(rounds, 3) << "expected every round to run and fail";
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.usedFallback)
        << "a valid modulo schedule must not be discarded";
    EXPECT_EQ(r.alloc.regsRequired, minRegsSeen)
        << "the kept schedule must be the best seen, not the last";
    EXPECT_GE(r.ii(), r.mii);
    std::string why;
    EXPECT_TRUE(validateSchedule(r.graph(), m, r.sched, &why)) << why;
}

TEST(Pipeliner, SpillFallsBackOnlyWhenAcyclicFits)
{
    // With a budget the acyclic schedule of the original loop can
    // satisfy, exhausting the rounds may still fall back — a fitting
    // result beats an over-budget modulo schedule.
    const Ddg g = buildApsi50Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 2;
    opts.heuristic = SpillHeuristic::MaxLT;
    opts.maxSpillRounds = 2;
    const PipelineResult r = spillStrategy(g, m, opts);
    if (r.usedFallback) {
        EXPECT_TRUE(r.success)
            << "fallback without a fitting allocation is a discard";
    } else {
        std::string why;
        EXPECT_TRUE(validateSchedule(r.graph(), m, r.sched, &why)) << why;
    }
}

TEST(Pipeliner, RegistersAtIiUsesTheImsSafetyNet)
{
    // Suite loop 219 (pinned seed): HRMS's non-backtracking placement
    // fails at MII on P2L4 while IMS succeeds there. registersAtIi must
    // apply the same IMS safety net as the strategy drivers instead of
    // reporting a -1 hole.
    const SuiteLoop loop = generateSuiteLoop(SuiteParams{}, 219);
    const Ddg &g = loop.graph;
    const Machine m = Machine::p2l4();
    const int lower = mii(g, m);

    auto hrms = makeScheduler(SchedulerKind::Hrms);
    auto ims = makeScheduler(SchedulerKind::Ims);
    ASSERT_FALSE(hrms->scheduleAt(g, m, lower).has_value())
        << "precondition: HRMS fails at MII on this loop";
    ASSERT_TRUE(ims->scheduleAt(g, m, lower).has_value())
        << "precondition: IMS succeeds at MII on this loop";

    PipelinerOptions opts;
    EXPECT_GT(registersAtIi(g, m, lower, opts), 0);
}

/** A (loop, budget) whose best-of-all outcome is the *unspilled* loop
    found by the binary search, while the preceding spill run needed
    multiple rounds (pinned suite seed; verified by preconditions). */
PipelinerOptions
binarySearchWinOptions()
{
    PipelinerOptions opts;
    opts.registers = 16;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    opts.heuristic = SpillHeuristic::MaxLTOverTraf;
    return opts;
}

Ddg
binarySearchWinLoop()
{
    return generateSuiteLoop(SuiteParams{}, 15).graph;
}

TEST(Pipeliner, BestOfAllReportsRoundsOfTheReturnedSchedule)
{
    // Regression: the no-spill result of the binary search used to copy
    // `rounds` from the discarded spill run, so a result that spilled
    // nothing reported multiple spill rounds.
    const Ddg g = binarySearchWinLoop();
    const Machine m = Machine::p2l4();
    const PipelinerOptions opts = binarySearchWinOptions();

    const PipelineResult spill = pipelineLoop(g, m, Strategy::Spill, opts);
    ASSERT_TRUE(spill.success);
    ASSERT_GT(spill.spilledLifetimes, 0)
        << "precondition: the spill run must actually spill";
    ASSERT_GT(spill.rounds, 1)
        << "precondition: the spill run must take several rounds";

    const PipelineResult best =
        pipelineLoop(g, m, Strategy::BestOfAll, opts);
    ASSERT_TRUE(best.success);
    ASSERT_EQ(best.spilledLifetimes, 0)
        << "precondition: the binary search must win with no spilling";
    EXPECT_LE(best.ii(), spill.ii());
    EXPECT_EQ(best.rounds, 1)
        << "a result that spilled nothing reports the discarded spill "
           "run's rounds";
}

/** Records every real scheduler invocation as a (graph, II) probe. */
class CountingScheduler final : public ModuloScheduler
{
  public:
    explicit CountingScheduler(SchedulerKind kind)
        : inner_(makeScheduler(kind))
    {
    }

    std::string name() const override { return inner_->name(); }

    std::optional<Schedule>
    scheduleAt(const Ddg &g, const Machine &m, int ii) override
    {
        probes.emplace_back(graphFingerprint(g), ii);
        return inner_->scheduleAt(g, m, ii);
    }

    std::vector<std::pair<std::uint64_t, int>> probes;

  private:
    std::unique_ptr<ModuloScheduler> inner_;
};

TEST(Pipeliner, BestOfAllWithMemoNeverReschedulesAProbedIi)
{
    const Ddg g = binarySearchWinLoop();
    const Machine m = Machine::p2l4();
    const PipelinerOptions opts = binarySearchWinOptions();

    // Without a memo the binary search re-schedules (graph, II) probes
    // the spill rounds already answered.
    CountingScheduler plainSched(opts.scheduler);
    EvalContext plainCtx;
    plainCtx.scheduler = &plainSched;
    const PipelineResult plain = bestOfAllStrategy(g, m, opts, &plainCtx);
    const auto countDuplicates =
        [](const std::vector<std::pair<std::uint64_t, int>> &probes) {
            std::set<std::pair<std::uint64_t, int>> seen;
            int dups = 0;
            for (const auto &p : probes)
                dups += !seen.insert(p).second;
            return dups;
        };
    ASSERT_GT(countDuplicates(plainSched.probes), 0)
        << "precondition: this case must repeat probes without a memo";

    // With the memo every repeated probe is answered from cache: zero
    // scheduler invocations at IIs already probed.
    ScheduleMemo memo(/*verifyKeys=*/true);
    CountingScheduler memoSched(opts.scheduler);
    EvalContext ctx;
    ctx.scheduler = &memoSched;
    ctx.memo = &memo;
    const PipelineResult r = bestOfAllStrategy(g, m, opts, &ctx);

    EXPECT_EQ(countDuplicates(memoSched.probes), 0)
        << "the binary search re-scheduled a probe the spill rounds "
           "already tried";
    EXPECT_LT(memoSched.probes.size(), plainSched.probes.size());

    // The memo changes the work, never the answer: the `attempts`
    // compile-effort proxy counts probe *requests* and stays identical,
    // as does everything else about the result.
    EXPECT_EQ(r.attempts, plain.attempts);
    EXPECT_LT(int(memoSched.probes.size()), r.attempts);
    EXPECT_EQ(r.success, plain.success);
    EXPECT_EQ(r.ii(), plain.ii());
    EXPECT_EQ(r.rounds, plain.rounds);
    EXPECT_EQ(r.spilledLifetimes, plain.spilledLifetimes);
    EXPECT_EQ(r.alloc.regsRequired, plain.alloc.regsRequired);
    ASSERT_EQ(r.graph().numNodes(), plain.graph().numNodes());
    for (NodeId n = 0; n < r.graph().numNodes(); ++n) {
        EXPECT_EQ(r.sched.time(n), plain.sched.time(n)) << n;
        EXPECT_EQ(r.sched.unit(n), plain.sched.unit(n)) << n;
    }
}

TEST(Pipeliner, SpillStrategyResultsIdenticalWithAndWithoutMemo)
{
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 24;
    opts.multiSelect = true;
    opts.reuseLastIi = true;
    for (const Ddg &g :
         {buildApsi47Analogue(), buildApsi50Analogue(),
          buildPaperExampleLoop()}) {
        ScheduleMemo memo(/*verifyKeys=*/true);
        EvalContext ctx;
        ctx.memo = &memo;
        const PipelineResult with = spillStrategy(g, m, opts, {}, &ctx);
        const PipelineResult without = spillStrategy(g, m, opts, {});
        EXPECT_EQ(with.success, without.success) << g.name();
        EXPECT_EQ(with.ii(), without.ii()) << g.name();
        EXPECT_EQ(with.attempts, without.attempts) << g.name();
        EXPECT_EQ(with.rounds, without.rounds) << g.name();
        EXPECT_EQ(with.spilledLifetimes, without.spilledLifetimes)
            << g.name();
        EXPECT_EQ(with.alloc.regsRequired, without.alloc.regsRequired)
            << g.name();
        EXPECT_GT(memo.stats().requests, 0) << g.name();
    }
}

TEST(Pipeliner, SpillObserverSeesMonotoneRounds)
{
    const Ddg g = buildApsi47Analogue();
    const Machine m = Machine::p2l4();
    PipelinerOptions opts;
    opts.registers = 24;
    int lastRound = 0;
    int calls = 0;
    const PipelineResult r = spillStrategy(
        g, m, opts, [&](const SpillRoundInfo &info) {
            EXPECT_EQ(info.round, lastRound + 1);
            lastRound = info.round;
            ++calls;
            EXPECT_GE(info.ii, info.mii);
        });
    ASSERT_TRUE(r.success);
    EXPECT_EQ(calls, r.rounds);
}

} // namespace
} // namespace swp
