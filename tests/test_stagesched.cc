/**
 * @file
 * Stage-scheduling post-pass tests: validity preservation, register
 * reduction on register-insensitive schedules, fused-group integrity,
 * and the no-pessimization guarantee.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "sched/groups.hh"
#include "sched/ims.hh"
#include "sched/mii.hh"
#include "liferange/stagesched.hh"
#include "workload/paper_loops.hh"
#include "workload/suitegen.hh"

namespace swp
{
namespace
{

TEST(StageSched, ImprovesAnArtificiallyBadSchedule)
{
    // ld -> add -> st with the consumer pushed 3 stages late: the
    // post-pass must pull the chain together.
    DdgBuilder b("bad");
    const NodeId ld = b.load();
    const NodeId add = b.add();
    const NodeId st = b.store();
    b.flow(ld, add);
    b.flow(add, st);
    const Ddg g = b.take();
    const Machine m = Machine::p2l4();

    Schedule s(2, 3);
    s.set(ld, 0, 0);
    s.set(add, 2 + 3 * 2, 0);  // 3 stages later than necessary.
    s.set(st, 12 + 3 * 2, 1);  // Unit 1: row 0 of mem unit 0 is ld's.
    ASSERT_TRUE(validateSchedule(g, m, s));

    const StageSchedResult r = stageSchedule(g, m, s);
    EXPECT_LT(r.maxLiveAfter, r.maxLiveBefore);
    EXPECT_GT(r.moves, 0);
    EXPECT_EQ(r.sched.ii(), 2);
    // Rows must be preserved (that is the whole point of the pass).
    for (NodeId n = 0; n < 3; ++n)
        EXPECT_EQ(r.sched.row(n), s.row(n)) << "node " << n;
}

TEST(StageSched, NeverBreaksValidityOrIncreasesMaxLive)
{
    SuiteParams params;
    params.numLoops = 25;
    const Machine m = Machine::p2l4();
    ImsScheduler ims;
    for (const SuiteLoop &loop : generateSuite(params)) {
        const int lower = mii(loop.graph, m);
        auto s = ims.scheduleAt(loop.graph, m, lower);
        if (!s) {
            s = ims.scheduleAt(loop.graph, m, lower + 1);
            if (!s)
                continue;
        }
        const StageSchedResult r = stageSchedule(loop.graph, m, *s);
        std::string why;
        EXPECT_TRUE(validateSchedule(loop.graph, m, r.sched, &why))
            << loop.graph.name() << ": " << why;
        EXPECT_LE(r.maxLiveAfter, r.maxLiveBefore) << loop.graph.name();
        EXPECT_EQ(r.sched.ii(), s->ii());
    }
}

TEST(StageSched, HelpsImsMoreThanHrms)
{
    // HRMS already minimizes lifetimes; IMS does not. Accumulated over
    // loops, the pass should recover more registers from IMS schedules.
    SuiteParams params;
    params.numLoops = 30;
    const Machine m = Machine::p2l4();
    long savedIms = 0, savedHrms = 0;
    auto hrms = makeScheduler(SchedulerKind::Hrms);
    auto ims = makeScheduler(SchedulerKind::Ims);
    for (const SuiteLoop &loop : generateSuite(params)) {
        const int lower = mii(loop.graph, m);
        const auto sh = hrms->scheduleAt(loop.graph, m, lower);
        const auto si = ims->scheduleAt(loop.graph, m, lower);
        if (!sh || !si)
            continue;
        const StageSchedResult rh = stageSchedule(loop.graph, m, *sh);
        const StageSchedResult ri = stageSchedule(loop.graph, m, *si);
        savedHrms += rh.maxLiveBefore - rh.maxLiveAfter;
        savedIms += ri.maxLiveBefore - ri.maxLiveAfter;
    }
    EXPECT_GE(savedIms, savedHrms);
    EXPECT_GT(savedIms, 0);
}

TEST(StageSched, MovesFusedGroupsTogether)
{
    // A spill-load fused pair inside a chain: after re-staging, the
    // fused offset must be intact.
    DdgBuilder b("fused");
    const NodeId ld = b.load("ld");
    const NodeId a1 = b.add("a1");
    b.flow(ld, a1);
    const NodeId ls = b.load("Ls");
    const NodeId a2 = b.add("a2");
    const EdgeId fe = b.graph().addEdge(ls, a2, DepKind::RegFlow, 0, true);
    (void)fe;
    b.flow(a1, a2);
    const NodeId st = b.store("st");
    b.flow(a2, st);
    Ddg g = b.take();
    g.node(ls).origin = NodeOrigin::SpillLoad;
    g.node(ls).spillRef.kind = SpillRef::Kind::ReloadStream;
    g.node(ls).spillRef.value = ld;
    g.node(ls).nonSpillableValue = true;
    const Machine m = Machine::p2l4();

    Schedule s(3, 5);
    s.set(ld, 0, 0);
    s.set(a1, 2, 0);
    s.set(ls, 4 + 6, 1);   // Fused pair staged late together.
    s.set(a2, 6 + 6, 1);
    s.set(st, 12 + 6, 1);  // Mem unit 0 row 0 belongs to ld.
    ASSERT_TRUE(validateSchedule(g, m, s));

    const StageSchedResult r = stageSchedule(g, m, s);
    std::string why;
    EXPECT_TRUE(validateSchedule(g, m, r.sched, &why)) << why;
    EXPECT_EQ(r.sched.time(a2) - r.sched.time(ls),
              m.latency(Opcode::Load));
}

TEST(StageSched, NoopOnTightSchedules)
{
    const Ddg g = buildPaperExampleLoop();
    const Machine m = Machine::universal("fig2", 4, 2);
    Schedule s(1, 4);
    s.set(0, 0, 0);
    s.set(1, 2, 1);
    s.set(2, 4, 2);
    s.set(3, 6, 3);
    const StageSchedResult r = stageSchedule(g, m, s);
    // The chain is already as tight as dependences allow.
    EXPECT_EQ(r.maxLiveAfter, r.maxLiveBefore);
}

} // namespace
} // namespace swp
